//! Exact branch-and-bound solver for the d-dimensional bin-design problem
//! of Section 5.3 — small instances only.
//!
//! Given operators with *fixed* degrees of parallelism and clone vectors,
//! the schedule's response time (Equation 3) is
//! `max(h, max_j l(work(s_j)))` with `h = max_i T_par(op_i, N_i)` fixed,
//! so optimizing the schedule means minimizing the maximum resource
//! congestion. The solver enumerates clone→site assignments with:
//!
//! * LPT ordering (big clones first — strong early pruning),
//! * bound pruning against the incumbent (seeded with the list heuristic's
//!   solution, so the search never does worse than OPERATORSCHEDULE),
//! * empty-site symmetry breaking (all empty sites are interchangeable),
//! * the `l(S)/P` work lower bound for early termination, and
//! * early exit once congestion no longer dominates `h`.
//!
//! Used by the X4 experiment and the Theorem 5.1 empirical-verification
//! tests. Exponential in the clone count — intended for ≲ 20 clones.

use mrs_core::error::ScheduleError;
use mrs_core::list::{pack_clones, ListOrder};
use mrs_core::model::ResponseModel;
use mrs_core::operator::Placement;
use mrs_core::resource::{SiteId, SystemSpec};
use mrs_core::schedule::{Assignment, PhaseSchedule, ScheduledOperator};
use mrs_core::vector::WorkVector;

/// An exact packing.
#[derive(Clone, Debug)]
pub struct OptimalPacking {
    /// The optimal clone→site assignment.
    pub assignment: Assignment,
    /// Optimal `max_j l(work(s_j))`.
    pub congestion: f64,
    /// Optimal response time `max(h, congestion)`.
    pub makespan: f64,
    /// Search-tree nodes explored.
    pub nodes: u64,
}

struct Search<'a> {
    ops: &'a [ScheduledOperator],
    clones: Vec<(usize, usize)>, // (op, clone) in LPT order
    sites: usize,
    loads: Vec<WorkVector>,
    lengths: Vec<f64>,
    occupied: Vec<Vec<bool>>, // op × site
    current: Vec<SiteId>,     // per clone (search order)
    best: Vec<SiteId>,
    best_congestion: f64,
    floor: f64, // l(S)/P ∨ max clone length: cannot do better
    nodes: u64,
    node_limit: u64,
}

impl Search<'_> {
    fn dfs(&mut self, idx: usize, congestion: f64) -> bool {
        if self.nodes >= self.node_limit {
            return false; // abort: limit exhausted
        }
        self.nodes += 1;
        if congestion >= self.best_congestion {
            return true; // prune
        }
        if idx == self.clones.len() {
            self.best_congestion = congestion;
            self.best.copy_from_slice(&self.current);
            return true;
        }
        let (op, k) = self.clones[idx];
        let w = &self.ops[op].clones[k].clone();
        let mut tried_empty = false;
        for s in 0..self.sites {
            if self.occupied[op][s] {
                continue;
            }
            let empty = self.lengths[s] == 0.0;
            if empty {
                // All empty sites are interchangeable: try only the first.
                if tried_empty {
                    continue;
                }
                tried_empty = true;
            }
            self.loads[s].accumulate(w);
            let new_len = self.loads[s].length();
            let old_len = self.lengths[s];
            self.lengths[s] = new_len;
            self.occupied[op][s] = true;
            self.current[idx] = SiteId(s);

            let ok = if new_len.max(congestion) < self.best_congestion {
                self.dfs(idx + 1, congestion.max(new_len))
            } else {
                true // pruned branch
            };

            self.occupied[op][s] = false;
            self.lengths[s] = old_len;
            self.loads[s].remove(w);
            if !ok {
                return false;
            }
            // Optimality floor reached: nothing better exists.
            if self.best_congestion <= self.floor * (1.0 + 1e-12) {
                return true;
            }
        }
        true
    }
}

/// Finds the congestion-optimal packing of `ops` (fixed degrees, fixed
/// clone vectors) on `sys`, or `None` when `node_limit` search nodes were
/// not enough to prove optimality.
///
/// # Errors
/// Propagates infeasibility (degree > P, malformed rooted homes) from the
/// list heuristic used to seed the incumbent.
pub fn optimal_pack<M: ResponseModel>(
    ops: &[ScheduledOperator],
    sys: &SystemSpec,
    model: &M,
    node_limit: u64,
) -> Result<Option<OptimalPacking>, ScheduleError> {
    // Seed the incumbent with the list heuristic.
    let seed = pack_clones(ops, sys, ListOrder::LongestFirst)?;
    let seed_schedule = PhaseSchedule {
        ops: ops.to_vec(),
        assignment: seed.clone(),
    };
    let seed_congestion = seed_schedule.max_congestion(sys);

    // Pre-place rooted clones; collect floating clones in LPT order.
    let mut loads = vec![WorkVector::zeros(sys.dim()); sys.sites];
    let mut occupied = vec![vec![false; sys.sites]; ops.len()];
    let mut clones: Vec<(usize, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match &op.spec.placement {
            Placement::Rooted(homes) => {
                for (k, &site) in homes.iter().enumerate() {
                    loads[site.0].accumulate(&op.clones[k]);
                    occupied[i][site.0] = true;
                }
            }
            Placement::Floating => {
                for k in 0..op.degree {
                    clones.push((i, k));
                }
            }
        }
    }
    clones.sort_by(|a, b| {
        let la = ops[a.0].clones[a.1].length();
        let lb = ops[b.0].clones[b.1].length();
        lb.total_cmp(&la).then(a.cmp(b))
    });

    let lengths: Vec<f64> = loads.iter().map(WorkVector::length).collect();
    let rooted_congestion = lengths.iter().copied().fold(0.0, f64::max);
    let total = WorkVector::vector_sum(
        ops.iter()
            .map(|o| o.total_vector())
            .collect::<Vec<_>>()
            .iter(),
    )
    .map_or(0.0, |v| v.length());
    let max_clone_len = clones
        .first()
        .map_or(0.0, |&(i, k)| ops[i].clones[k].length());
    let floor = (total / sys.sites as f64)
        .max(max_clone_len)
        .max(rooted_congestion);

    let n = clones.len();
    let mut search = Search {
        ops,
        clones,
        sites: sys.sites,
        loads,
        lengths,
        occupied,
        current: vec![SiteId(0); n],
        best: vec![SiteId(0); n],
        best_congestion: seed_congestion * (1.0 + 1e-12) + 1e-15,
        floor,
        nodes: 0,
        node_limit,
    };
    let complete = search.dfs(0, rooted_congestion);
    if !complete {
        return Ok(None);
    }

    // Materialize the best assignment (falling back to the seed when the
    // search never improved on it).
    let mut assignment = seed;
    let improved = search.best_congestion < seed_congestion;
    if improved {
        for (idx, &(i, k)) in search.clones.iter().enumerate() {
            assignment.homes[i][k] = search.best[idx];
        }
    }
    let schedule = PhaseSchedule {
        ops: ops.to_vec(),
        assignment: assignment.clone(),
    };
    debug_assert!(schedule.validate(sys).is_ok());
    let congestion = schedule.max_congestion(sys);
    let h = ops.iter().map(|o| o.t_par(model)).fold(0.0, f64::max);
    Ok(Some(OptimalPacking {
        assignment,
        congestion,
        makespan: h.max(congestion),
        nodes: search.nodes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::comm::CommModel;
    use mrs_core::model::OverlapModel;
    use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};

    fn sop(id: usize, w: &[f64], degree: usize, sys: &SystemSpec) -> ScheduledOperator {
        let comm = CommModel::new(1e-9, 0.0).unwrap();
        ScheduledOperator::even(
            OperatorSpec::floating(
                OperatorId(id),
                OperatorKind::Other,
                WorkVector::from_slice(w),
                0.0,
            ),
            degree,
            &comm,
            &sys.site,
        )
    }

    #[test]
    fn trivial_single_clone() {
        let sys = SystemSpec::homogeneous(3);
        let model = OverlapModel::perfect();
        let ops = vec![sop(0, &[2.0, 0.0, 0.0], 1, &sys)];
        let r = optimal_pack(&ops, &sys, &model, 10_000).unwrap().unwrap();
        assert!((r.congestion - 2.0).abs() < 1e-9);
    }

    #[test]
    fn complementary_vectors_pack_perfectly() {
        // Two unit vectors on different dimensions: optimal congestion on
        // one site is 1.0 (vs 2.0 for any scalar-blind stacking on the
        // same dimension).
        let sys = SystemSpec::homogeneous(1);
        let model = OverlapModel::perfect();
        let ops = vec![
            sop(0, &[1.0, 0.0, 0.0], 1, &sys),
            sop(1, &[0.0, 1.0, 0.0], 1, &sys),
        ];
        let r = optimal_pack(&ops, &sys, &model, 10_000).unwrap().unwrap();
        assert!((r.congestion - 1.0).abs() < 1e-6);
    }

    #[test]
    fn finds_better_than_greedy_on_adversarial_case() {
        // Classic LPT trap (1-D): sizes {3,3,2,2,2} on 2 bins. LPT gives
        // 3+2, 3+2 → then 2 lands on either → 7; optimal is 3+3 | 2+2+2 = 6.
        let sys = SystemSpec::homogeneous(2);
        let model = OverlapModel::perfect();
        let sizes = [3.0, 3.0, 2.0, 2.0, 2.0];
        let ops: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| sop(i, &[s, 0.0, 0.0], 1, &sys))
            .collect();
        let r = optimal_pack(&ops, &sys, &model, 1_000_000)
            .unwrap()
            .unwrap();
        assert!((r.congestion - 6.0).abs() < 1e-6, "got {}", r.congestion);
    }

    #[test]
    fn never_worse_than_list_heuristic() {
        let sys = SystemSpec::homogeneous(3);
        let model = OverlapModel::new(0.5).unwrap();
        let ops: Vec<_> = (0..6)
            .map(|i| sop(i, &[1.0 + (i % 3) as f64, (i % 2) as f64, 0.5], 1, &sys))
            .collect();
        let heuristic = pack_clones(&ops, &sys, ListOrder::LongestFirst).unwrap();
        let hc = PhaseSchedule {
            ops: ops.clone(),
            assignment: heuristic,
        }
        .max_congestion(&sys);
        let r = optimal_pack(&ops, &sys, &model, 10_000_000)
            .unwrap()
            .unwrap();
        assert!(r.congestion <= hc + 1e-9);
    }

    #[test]
    fn respects_clone_distinctness() {
        let sys = SystemSpec::homogeneous(2);
        let model = OverlapModel::perfect();
        let ops = vec![sop(0, &[2.0, 0.0, 0.0], 2, &sys)];
        let r = optimal_pack(&ops, &sys, &model, 10_000).unwrap().unwrap();
        assert_ne!(r.assignment.homes[0][0], r.assignment.homes[0][1]);
    }

    #[test]
    fn rooted_clones_stay_put() {
        let sys = SystemSpec::homogeneous(3);
        let model = OverlapModel::perfect();
        let comm = CommModel::new(1e-9, 0.0).unwrap();
        let rooted = ScheduledOperator::even(
            OperatorSpec::rooted(
                OperatorId(0),
                OperatorKind::Probe,
                WorkVector::from_slice(&[5.0, 0.0, 0.0]),
                0.0,
                vec![SiteId(2)],
            ),
            1,
            &comm,
            &sys.site,
        );
        let ops = vec![rooted, sop(1, &[1.0, 0.0, 0.0], 1, &sys)];
        let r = optimal_pack(&ops, &sys, &model, 10_000).unwrap().unwrap();
        assert_eq!(r.assignment.homes[0], vec![SiteId(2)]);
        assert_ne!(r.assignment.homes[1][0], SiteId(2));
    }

    #[test]
    fn node_limit_returns_none() {
        let sys = SystemSpec::homogeneous(4);
        let model = OverlapModel::perfect();
        let ops: Vec<_> = (0..12)
            .map(|i| sop(i, &[1.0 + (i as f64) * 0.1, 0.3, 0.2], 1, &sys))
            .collect();
        let r = optimal_pack(&ops, &sys, &model, 3).unwrap();
        assert!(r.is_none(), "3 nodes cannot prove optimality for 12 clones");
    }

    #[test]
    fn makespan_includes_h() {
        // One giant clone fixes h regardless of packing.
        let sys = SystemSpec::homogeneous(4);
        let model = OverlapModel::perfect();
        let ops = vec![
            sop(0, &[10.0, 0.0, 0.0], 1, &sys),
            sop(1, &[1.0, 0.0, 0.0], 1, &sys),
        ];
        let r = optimal_pack(&ops, &sys, &model, 10_000).unwrap().unwrap();
        assert!((r.makespan - 10.0).abs() < 1e-9);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use mrs_core::comm::CommModel;
    use mrs_core::model::OverlapModel;
    use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Theorem 5.1(a) verified against the *true* optimum: the list
        /// heuristic is within (2d+1)× of optimal congestion-or-h.
        #[test]
        fn heuristic_within_ratio_of_true_optimum(
            raw in proptest::collection::vec(
                (proptest::collection::vec(0.0f64..10.0, 3), 1usize..3),
                1..7,
            ),
            sites in 1usize..5,
        ) {
            let sys = SystemSpec::homogeneous(sites);
            let model = OverlapModel::new(0.5).unwrap();
            let comm = CommModel::new(1e-9, 0.0).unwrap();
            let ops: Vec<_> = raw.into_iter().enumerate().map(|(i, (mut w, deg))| {
                w[0] += 1e-3;
                ScheduledOperator::even(
                    OperatorSpec::floating(
                        OperatorId(i), OperatorKind::Other, WorkVector::new(w), 0.0,
                    ),
                    deg.min(sites),
                    &comm,
                    &sys.site,
                )
            }).collect();
            let heuristic = pack_clones(&ops, &sys, ListOrder::LongestFirst).unwrap();
            let hm = PhaseSchedule { ops: ops.clone(), assignment: heuristic }
                .makespan(&sys, &model);
            let opt = optimal_pack(&ops, &sys, &model, 5_000_000).unwrap().unwrap();
            let ratio = 2.0 * sys.dim() as f64 + 1.0;
            prop_assert!(hm <= ratio * opt.makespan + 1e-9,
                "heuristic {hm} vs optimal {} exceeds (2d+1)", opt.makespan);
        }
    }
}
