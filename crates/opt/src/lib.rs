//! # mrs-opt — exact solvers for small instances
//!
//! Branch-and-bound optimal vector packing for the d-dimensional
//! bin-design problem of Section 5.3. Exponential-time, meant for small
//! instances: it verifies Theorem 5.1 empirically (the list heuristic's
//! measured gap to the *true* optimum) and powers the X4 experiment.
//!
//! ```
//! use mrs_opt::prelude::*;
//! use mrs_core::prelude::*;
//!
//! let sys = SystemSpec::homogeneous(2);
//! let comm = CommModel::new(1e-9, 0.0).unwrap();
//! let model = OverlapModel::perfect();
//! let ops: Vec<ScheduledOperator> = (0..4).map(|i| ScheduledOperator::even(
//!     OperatorSpec::floating(OperatorId(i), OperatorKind::Other,
//!         WorkVector::from_slice(&[1.0 + i as f64, 0.0, 0.0]), 0.0),
//!     1, &comm, &sys.site,
//! )).collect();
//! let opt = optimal_pack(&ops, &sys, &model, 1_000_000).unwrap().unwrap();
//! assert!(opt.congestion >= 5.0); // 1+2+3+4 over 2 sites ≥ 5
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bnb;

/// One-stop imports.
pub mod prelude {
    pub use crate::bnb::{optimal_pack, OptimalPacking};
}
