//! Per-site fluid simulation of preemptable-resource sharing.
//!
//! Under the paper's assumptions A2 (no time-sharing overhead) and A3
//! (uniform resource usage), a clone with work vector `W` and intrinsic
//! duration `T_seq(W)` demands resource `i` at rate `W[i]/T_seq` while
//! running at full speed. A site scheduler assigns each resident clone a
//! *speed* `s ∈ (0, 1]`; running at speed `s` stretches the clone and
//! scales all its demand rates by `s`. Each of the site's `d` resources
//! has unit service capacity.
//!
//! The engine is event-driven: between clone completions, speeds are
//! constant; at each completion the policy recomputes speeds. Two policies
//! are provided:
//!
//! * [`SharingPolicy::EqualFinish`] — the site stretches all resident
//!   clones to the minimal common horizon `h = max(max_c r_c, l(R)/cap)`
//!   (with `R` the remaining aggregate load). With zero overhead this
//!   realizes Equation (2) *exactly*, which is how the simulator validates
//!   the paper's analytic model.
//! * [`SharingPolicy::FairShare`] — progressive filling: every clone
//!   starts at full speed and bottlenecked resources proportionally
//!   throttle their users. A more "operational" discipline that needs no
//!   global horizon.
//!
//! Setting `timeshare_overhead > 0` relaxes assumption A2: with `n` clones
//! resident, each resource's effective capacity drops to
//! `1 / (1 + ovh·(n−1))` — the paper's Section 8 remark that disks do not
//! time-share gracefully.

use mrs_core::vector::WorkVector;

/// How a site's resources are shared among resident clones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Stretch all clones to a common minimal finish horizon (realizes
    /// Equation (2) under A2/A3).
    EqualFinish,
    /// Progressive filling with proportional throttling at bottlenecks.
    FairShare,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// The sharing discipline.
    pub policy: SharingPolicy,
    /// Per-extra-clone capacity penalty (`0.0` = assumption A2 holds).
    pub timeshare_overhead: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: SharingPolicy::EqualFinish,
            timeshare_overhead: 0.0,
        }
    }
}

/// One clone resident at a site.
#[derive(Clone, Debug)]
pub struct SimClone {
    /// Caller-chosen tag reported back in completion events.
    pub tag: usize,
    /// The clone's work vector.
    pub work: WorkVector,
    /// The clone's intrinsic (full-speed) duration `T_seq(W)`.
    pub duration: f64,
}

/// A completion event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The clone's tag.
    pub tag: usize,
    /// Simulated completion time.
    pub time: f64,
}

struct Active {
    tag: usize,
    /// Demand rates per resource at full speed (`W[i]/duration`).
    demand: Vec<f64>,
    /// Remaining intrinsic time.
    remaining: f64,
}

fn capacity_factor(overhead: f64, resident: usize) -> f64 {
    if resident <= 1 {
        1.0
    } else {
        1.0 / (1.0 + overhead * (resident as f64 - 1.0))
    }
}

fn speeds(active: &[Active], config: &SimConfig, d: usize) -> Vec<f64> {
    let cap = capacity_factor(config.timeshare_overhead, active.len());
    match config.policy {
        SharingPolicy::EqualFinish => {
            // Horizon: slowest clone, or the most congested resource under
            // the reduced capacity.
            let max_remaining = active.iter().map(|a| a.remaining).fold(0.0, f64::max);
            let mut load = vec![0.0f64; d];
            for a in active {
                for (l, dem) in load.iter_mut().zip(&a.demand) {
                    *l += a.remaining * dem;
                }
            }
            let congested = load.iter().copied().fold(0.0, f64::max) / cap;
            let horizon = max_remaining.max(congested);
            if horizon <= 0.0 {
                return vec![1.0; active.len()];
            }
            active.iter().map(|a| (a.remaining / horizon).min(1.0)).collect()
        }
        SharingPolicy::FairShare => {
            let mut s = vec![1.0f64; active.len()];
            // Progressive filling: at most d bottlenecks to resolve.
            for _ in 0..=d {
                let mut util = vec![0.0f64; d];
                for (a, &sc) in active.iter().zip(&s) {
                    for (u, dem) in util.iter_mut().zip(&a.demand) {
                        *u += sc * dem;
                    }
                }
                let (b, &u_max) = match util
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.total_cmp(y.1))
                {
                    Some(x) => x,
                    None => break,
                };
                if u_max <= cap * (1.0 + 1e-12) {
                    break;
                }
                let scale = cap / u_max;
                for (a, sc) in active.iter().zip(s.iter_mut()) {
                    if a.demand[b] > 0.0 {
                        *sc *= scale;
                    }
                }
            }
            s
        }
    }
}

/// Simulates one site hosting `clones` from time zero until all complete.
///
/// Returns completions in time order; the site finish time is the last
/// completion (or `0.0` for no clones).
pub fn simulate_site(clones: &[SimClone], config: &SimConfig, d: usize) -> Vec<Completion> {
    let mut completions: Vec<Completion> = Vec::with_capacity(clones.len());
    let mut now = 0.0f64;
    let mut active: Vec<Active> = Vec::with_capacity(clones.len());
    for c in clones {
        assert_eq!(c.work.dim(), d, "clone dimensionality must match the site");
        assert!(
            c.duration.is_finite() && c.duration >= 0.0,
            "clone duration must be finite and non-negative"
        );
        if c.duration <= 0.0 {
            completions.push(Completion { tag: c.tag, time: 0.0 });
            continue;
        }
        let demand = (0..d).map(|i| c.work[i] / c.duration).collect();
        active.push(Active {
            tag: c.tag,
            demand,
            remaining: c.duration,
        });
    }

    // Event loop: guaranteed to terminate because at least one clone
    // completes per iteration.
    while !active.is_empty() {
        let s = speeds(&active, config, d);
        // Time to next completion.
        let mut dt = f64::INFINITY;
        for (a, &sc) in active.iter().zip(&s) {
            if sc > 0.0 {
                dt = dt.min(a.remaining / sc);
            }
        }
        assert!(
            dt.is_finite(),
            "sharing policy starved every clone (all speeds zero)"
        );
        now += dt;
        for (a, &sc) in active.iter_mut().zip(&s) {
            a.remaining -= sc * dt;
        }
        let mut i = 0;
        let mut finished_this_round = 0;
        while i < active.len() {
            if active[i].remaining <= 1e-12 * now.max(1.0) {
                let a = active.swap_remove(i);
                completions.push(Completion { tag: a.tag, time: now });
                finished_this_round += 1;
            } else {
                i += 1;
            }
        }
        assert!(finished_this_round > 0, "event loop made no progress");
    }
    completions.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.tag.cmp(&b.tag)));
    completions
}

/// The site's finish time: the last completion.
pub fn site_finish(completions: &[Completion]) -> f64 {
    completions.iter().map(|c| c.time).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clone(tag: usize, w: &[f64], duration: f64) -> SimClone {
        SimClone {
            tag,
            work: WorkVector::from_slice(w),
            duration,
        }
    }

    #[test]
    fn lone_clone_runs_at_full_speed() {
        for policy in [SharingPolicy::EqualFinish, SharingPolicy::FairShare] {
            let cfg = SimConfig { policy, timeshare_overhead: 0.0 };
            let done = simulate_site(&[clone(0, &[3.0, 1.0], 4.0)], &cfg, 2);
            assert_eq!(done.len(), 1);
            assert!((done[0].time - 4.0).abs() < 1e-9, "{policy:?}: {}", done[0].time);
        }
    }

    #[test]
    fn empty_site_finishes_immediately() {
        let done = simulate_site(&[], &SimConfig::default(), 3);
        assert!(done.is_empty());
        assert_eq!(site_finish(&done), 0.0);
    }

    #[test]
    fn zero_duration_clone_completes_at_zero() {
        let done = simulate_site(&[clone(7, &[0.0, 0.0], 0.0)], &SimConfig::default(), 2);
        assert_eq!(done, vec![Completion { tag: 7, time: 0.0 }]);
    }

    #[test]
    fn equal_finish_reproduces_paper_example() {
        // Section 5.2.2: (22, [10,15]) + (10, [10,5]) → site time 22;
        // (22, [10,15]) + (10, [5,10]) → 25.
        let cfg = SimConfig::default();
        let done = simulate_site(
            &[clone(0, &[10.0, 15.0], 22.0), clone(1, &[10.0, 5.0], 10.0)],
            &cfg,
            2,
        );
        assert!((site_finish(&done) - 22.0).abs() < 1e-9);

        let done = simulate_site(
            &[clone(0, &[10.0, 15.0], 22.0), clone(1, &[5.0, 10.0], 10.0)],
            &cfg,
            2,
        );
        assert!((site_finish(&done) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_never_beats_congestion_bound() {
        let cfg = SimConfig { policy: SharingPolicy::FairShare, timeshare_overhead: 0.0 };
        let clones = [
            clone(0, &[10.0, 15.0], 22.0),
            clone(1, &[5.0, 10.0], 10.0),
        ];
        let finish = site_finish(&simulate_site(&clones, &cfg, 2));
        // l(sum) = max(15, 25) = 25 and slowest clone is 22.
        assert!(finish >= 25.0 - 1e-9, "finish {finish}");
    }

    #[test]
    fn fair_share_uncongested_clones_run_at_full_speed() {
        let cfg = SimConfig { policy: SharingPolicy::FairShare, timeshare_overhead: 0.0 };
        // Combined peak demand ≤ 1 on each resource: no throttling.
        let clones = [
            clone(0, &[2.0, 0.0], 10.0), // demands 0.2 on r0
            clone(1, &[0.0, 3.0], 10.0), // demands 0.3 on r1
        ];
        let done = simulate_site(&clones, &cfg, 2);
        assert!((site_finish(&done) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_slows_sharing_but_not_solo() {
        let cfg = SimConfig { policy: SharingPolicy::EqualFinish, timeshare_overhead: 0.5 };
        let solo = site_finish(&simulate_site(&[clone(0, &[8.0, 0.0], 8.0)], &cfg, 2));
        assert!((solo - 8.0).abs() < 1e-9, "a lone clone pays no overhead");
        // Two congesting clones pay the penalty: aggregate CPU work 16
        // at capacity 1/(1+0.5) → at least 24 time units.
        let both = site_finish(&simulate_site(
            &[clone(0, &[8.0, 0.0], 8.0), clone(1, &[8.0, 0.0], 8.0)],
            &cfg,
            2,
        ));
        assert!(both >= 16.0, "overhead must bite: {both}");
    }

    #[test]
    fn completions_sorted_by_time() {
        let cfg = SimConfig { policy: SharingPolicy::FairShare, timeshare_overhead: 0.0 };
        let clones = [
            clone(0, &[1.0, 0.0], 10.0),
            clone(1, &[0.5, 0.0], 2.0),
            clone(2, &[0.2, 0.0], 1.0),
        ];
        let done = simulate_site(&clones, &cfg, 2);
        for pair in done.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert_eq!(done.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn dimension_mismatch_panics() {
        simulate_site(&[clone(0, &[1.0], 1.0)], &SimConfig::default(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_clones() -> impl Strategy<Value = Vec<SimClone>> {
        proptest::collection::vec(
            (proptest::collection::vec(0.0f64..10.0, 3), 0.0f64..1.0),
            1..6,
        )
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (w, slack))| {
                    let wv = WorkVector::new(w);
                    // Duration between max (perfect overlap) and sum.
                    let duration = wv.length() + slack * (wv.total() - wv.length());
                    SimClone {
                        tag: i,
                        work: wv,
                        duration,
                    }
                })
                .collect()
        })
    }

    proptest! {
        /// Equation (2): under A2/A3 the EqualFinish site finish time is
        /// exactly max(max_c T_c, l(Σ W_c)).
        #[test]
        fn equal_finish_matches_equation_2(clones in arb_clones()) {
            let cfg = SimConfig::default();
            let finish = site_finish(&simulate_site(&clones, &cfg, 3));
            let max_t = clones.iter().map(|c| c.duration).fold(0.0, f64::max);
            let l = WorkVector::set_length(clones.iter().map(|c| &c.work).collect::<Vec<_>>());
            let expected = max_t.max(l);
            prop_assert!((finish - expected).abs() <= 1e-6 * expected.max(1.0),
                "sim {finish} vs Eq(2) {expected}");
        }

        /// Any policy respects the two lower bounds of Equation (2).
        #[test]
        fn all_policies_respect_lower_bounds(clones in arb_clones()) {
            for policy in [SharingPolicy::EqualFinish, SharingPolicy::FairShare] {
                let cfg = SimConfig { policy, timeshare_overhead: 0.0 };
                let finish = site_finish(&simulate_site(&clones, &cfg, 3));
                let max_t = clones.iter().map(|c| c.duration).fold(0.0, f64::max);
                let l = WorkVector::set_length(clones.iter().map(|c| &c.work).collect::<Vec<_>>());
                prop_assert!(finish + 1e-7 * finish.max(1.0) >= max_t.max(l));
            }
        }

        /// Overhead can only hurt.
        #[test]
        fn overhead_monotone(clones in arb_clones(), ovh in 0.0f64..2.0) {
            let base = site_finish(&simulate_site(&clones, &SimConfig::default(), 3));
            let cfg = SimConfig { policy: SharingPolicy::EqualFinish, timeshare_overhead: ovh };
            let slowed = site_finish(&simulate_site(&clones, &cfg, 3));
            prop_assert!(slowed + 1e-9 >= base);
        }
    }
}
