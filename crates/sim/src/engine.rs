//! Per-site fluid simulation of preemptable-resource sharing.
//!
//! Under the paper's assumptions A2 (no time-sharing overhead) and A3
//! (uniform resource usage), a clone with work vector `W` and intrinsic
//! duration `T_seq(W)` demands resource `i` at rate `W[i]/T_seq` while
//! running at full speed. A site scheduler assigns each resident clone a
//! *speed* `s ∈ (0, 1]`; running at speed `s` stretches the clone and
//! scales all its demand rates by `s`. Each of the site's `d` resources
//! has unit service capacity.
//!
//! The engine is event-driven: between clone completions, speeds are
//! constant; at each completion the policy recomputes speeds. Two policies
//! are provided:
//!
//! * [`SharingPolicy::EqualFinish`] — the site stretches all resident
//!   clones to the minimal common horizon `h = max(max_c r_c, l(R)/cap)`
//!   (with `R` the remaining aggregate load). With zero overhead this
//!   realizes Equation (2) *exactly*, which is how the simulator validates
//!   the paper's analytic model.
//! * [`SharingPolicy::FairShare`] — progressive filling: every clone
//!   starts at full speed and bottlenecked resources proportionally
//!   throttle their users. A more "operational" discipline that needs no
//!   global horizon.
//!
//! Setting `timeshare_overhead > 0` relaxes assumption A2: with `n` clones
//! resident, each resource's effective capacity drops to
//! `1 / (1 + ovh·(n−1))` — the paper's Section 8 remark that disks do not
//! time-share gracefully.

use mrs_core::vector::WorkVector;

/// How a site's resources are shared among resident clones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Stretch all clones to a common minimal finish horizon (realizes
    /// Equation (2) under A2/A3).
    EqualFinish,
    /// Progressive filling with proportional throttling at bottlenecks.
    FairShare,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// The sharing discipline.
    pub policy: SharingPolicy,
    /// Per-extra-clone capacity penalty (`0.0` = assumption A2 holds).
    pub timeshare_overhead: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: SharingPolicy::EqualFinish,
            timeshare_overhead: 0.0,
        }
    }
}

/// One clone resident at a site.
#[derive(Clone, Debug)]
pub struct SimClone {
    /// Caller-chosen tag reported back in completion events.
    pub tag: usize,
    /// The clone's work vector.
    pub work: WorkVector,
    /// The clone's intrinsic (full-speed) duration `T_seq(W)`.
    pub duration: f64,
}

/// A completion event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The clone's tag.
    pub tag: usize,
    /// Simulated completion time.
    pub time: f64,
}

/// One interval of a site's piecewise-constant utilization trajectory:
/// for `len` virtual seconds starting at `start`, resource `i` ran at
/// normalized utilization `util[i]` (realized demand over effective
/// capacity). Recorded only when the per-step series is enabled
/// ([`SiteSim::enable_util_series`]); the always-on
/// [`SiteSim::util_integral`] is the exact integral of this series.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilSample {
    /// Interval start (the site's clock before the step).
    pub start: f64,
    /// Interval length (zero-length steps are not recorded).
    pub len: f64,
    /// Normalized utilization per resource, constant across the interval.
    pub util: Vec<f64>,
}

#[derive(Clone, Debug)]
struct Active {
    tag: usize,
    /// Demand rates per resource at full speed (`W[i]/duration`).
    demand: Vec<f64>,
    /// Remaining intrinsic time.
    remaining: f64,
}

/// A clone evicted from a failed site, carrying the state the recovery
/// layer needs to re-pack its unfinished work elsewhere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LostClone {
    /// The clone's caller-chosen tag.
    pub tag: usize,
    /// Remaining intrinsic (full-speed) time at the instant of loss.
    /// `remaining / duration` is the unfinished fraction of the clone's
    /// work vector.
    pub remaining: f64,
}

fn capacity_factor(overhead: f64, resident: usize) -> f64 {
    if resident <= 1 {
        1.0
    } else {
        1.0 / (1.0 + overhead * (resident as f64 - 1.0))
    }
}

/// Solves the sharing policy into caller-owned buffers: `out` receives one
/// speed per active clone, `scratch` is the `d`-sized accumulator the
/// solver reuses (load for EqualFinish, utilization for FairShare). The
/// arithmetic — accumulation order included — is bit-identical to the
/// original allocating solver, so cached results equal recomputed ones.
fn speeds_into(
    active: &[Active],
    config: &SimConfig,
    d: usize,
    out: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    let cap = capacity_factor(config.timeshare_overhead, active.len());
    out.clear();
    scratch.clear();
    scratch.resize(d, 0.0);
    match config.policy {
        SharingPolicy::EqualFinish => {
            // Horizon: slowest clone, or the most congested resource under
            // the reduced capacity.
            let max_remaining = active.iter().map(|a| a.remaining).fold(0.0, f64::max);
            for a in active {
                for (l, dem) in scratch.iter_mut().zip(&a.demand) {
                    *l += a.remaining * dem;
                }
            }
            let congested = scratch.iter().copied().fold(0.0, f64::max) / cap;
            let horizon = max_remaining.max(congested);
            if horizon <= 0.0 {
                out.resize(active.len(), 1.0);
                return;
            }
            out.extend(active.iter().map(|a| (a.remaining / horizon).min(1.0)));
        }
        SharingPolicy::FairShare => {
            out.resize(active.len(), 1.0);
            // Progressive filling: at most d bottlenecks to resolve.
            for _ in 0..=d {
                for u in scratch.iter_mut() {
                    *u = 0.0;
                }
                for (a, &sc) in active.iter().zip(out.iter()) {
                    for (u, dem) in scratch.iter_mut().zip(&a.demand) {
                        *u += sc * dem;
                    }
                }
                let (b, &u_max) = match scratch.iter().enumerate().max_by(|x, y| x.1.total_cmp(y.1))
                {
                    Some(x) => x,
                    None => break,
                };
                if u_max <= cap * (1.0 + 1e-12) {
                    break;
                }
                let scale = cap / u_max;
                for (a, sc) in active.iter().zip(out.iter_mut()) {
                    if a.demand[b] > 0.0 {
                        *sc *= scale;
                    }
                }
            }
        }
    }
}

/// A stateful, incrementally steppable fluid site: the online runtime's
/// window into the engine.
///
/// Where [`simulate_site`] runs a fixed clone population from time zero
/// to drain, `SiteSim` exposes the clock: clones may be inserted at any
/// virtual time ([`SiteSim::add_clone`]), the next completion instant can
/// be queried ([`SiteSim::next_completion_time`]), and the site can be
/// advanced to an arbitrary time ([`SiteSim::advance_to`]) — between
/// events the fluid speeds are constant, so advancing is exact, not
/// approximate. The site also integrates *actual* per-resource busy time
/// (`Σ_c s_c·demand_c[r]·dt`), the ground truth behind utilization
/// metrics.
#[derive(Debug)]
pub struct SiteSim {
    config: SimConfig,
    d: usize,
    now: f64,
    active: Vec<Active>,
    busy: Vec<f64>,
    /// Speed multiplier in `(0, 1]`: a straggler site stretches every
    /// resident clone by `1/rate`. At `1.0` the arithmetic is bit-exact
    /// with a rate-free build (`x * 1.0 == x` in IEEE 754).
    rate: f64,
    /// A crashed site holds no clones and accepts none until restored.
    down: bool,
    /// Cached solved speed vector for the current population state,
    /// valid while `speeds_valid`. Any mutation of the inputs the solver
    /// reads (the active set, a clone's `remaining`) clears the flag;
    /// repeated queries between events reuse the buffer allocation-free.
    speeds_buf: Vec<f64>,
    /// `d`-sized accumulator the speed solver reuses.
    scratch: Vec<f64>,
    speeds_valid: bool,
    /// Peak normalized utilization per resource observed over the site's
    /// lifetime: `max_t Σ_c s_c·demand_c[i] / cap(n_t)`. A feasible
    /// sharing solution keeps every component ≤ 1 (up to float noise) —
    /// the quantity `mrs-audit` checks end-to-end.
    peak_util: Vec<f64>,
    /// Exact integral of normalized utilization per resource:
    /// `∫ u_i(t)/cap(n_t) dt` over the site's lifetime. Because the
    /// trajectory is piecewise constant between events, accumulating
    /// `(u/cap)·step` per step is the integral, not an approximation;
    /// dividing by the horizon bounds *average* over-commitment the same
    /// way `peak_util` bounds the instantaneous kind.
    util_integral: Vec<f64>,
    /// Optional per-step utilization series (see
    /// [`SiteSim::enable_util_series`]); `None` records nothing.
    util_series: Option<Vec<UtilSample>>,
}

impl SiteSim {
    /// An idle site of dimensionality `d` at virtual time zero.
    pub fn new(config: SimConfig, d: usize) -> Self {
        SiteSim {
            config,
            d,
            now: 0.0,
            active: Vec::new(),
            busy: vec![0.0; d],
            rate: 1.0,
            down: false,
            speeds_buf: Vec::new(),
            scratch: Vec::new(),
            speeds_valid: false,
            peak_util: vec![0.0; d],
            util_integral: vec![0.0; d],
            util_series: None,
        }
    }

    /// Re-solves the sharing policy into `speeds_buf` unless the cached
    /// solution is still valid. A cache hit is trivially bit-exact: the
    /// flag only survives while every solver input is untouched, so a
    /// recomputation would read identical state.
    fn ensure_speeds(&mut self) {
        if !self.speeds_valid {
            speeds_into(
                &self.active,
                &self.config,
                self.d,
                &mut self.speeds_buf,
                &mut self.scratch,
            );
            self.speeds_valid = true;
        }
    }

    /// The site's current virtual time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of clones currently resident.
    #[inline]
    pub fn resident(&self) -> usize {
        self.active.len()
    }

    /// Integrated busy time per resource since construction.
    #[inline]
    pub fn busy(&self) -> &[f64] {
        &self.busy
    }

    /// Peak normalized utilization per resource so far: the largest
    /// instantaneous share of the (overhead-reduced) capacity any
    /// resource ever reached. Fluid-sharing feasibility keeps every
    /// component ≤ 1 up to float noise.
    #[inline]
    pub fn peak_util(&self) -> &[f64] {
        &self.peak_util
    }

    /// Exact integral of normalized utilization per resource since
    /// construction (see the field docs). Dividing by the run horizon
    /// yields the site's time-average utilization, which feasible fluid
    /// sharing keeps ≤ 1 — the average-over-commitment bound `mrs-audit`
    /// checks alongside the peak.
    #[inline]
    pub fn util_integral(&self) -> &[f64] {
        &self.util_integral
    }

    /// Starts recording the per-step utilization series (one
    /// [`UtilSample`] per constant-speed interval). Off by default: the
    /// series costs memory proportional to the event count, while the
    /// always-on [`SiteSim::util_integral`] is `d` floats. Enabling it
    /// changes no simulation arithmetic.
    pub fn enable_util_series(&mut self) {
        if self.util_series.is_none() {
            self.util_series = Some(Vec::new());
        }
    }

    /// The recorded per-step utilization series, or `None` when
    /// [`SiteSim::enable_util_series`] was never called.
    pub fn util_series(&self) -> Option<&[UtilSample]> {
        self.util_series.as_deref()
    }

    /// The site's speed multiplier (see [`SiteSim::set_rate`]).
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Marks the site a straggler: every resident clone's realized speed
    /// is scaled by `rate`, stretching all work by `1/rate`. The default
    /// `1.0` is an exact no-op.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and in `(0, 1]`.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 1.0,
            "site rate must lie in (0, 1], got {rate}"
        );
        self.rate = rate;
    }

    /// Whether the site is currently crashed.
    #[inline]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Crashes the site at the current virtual time: every resident clone
    /// is evicted and returned (in residency order) with its remaining
    /// intrinsic time, and the site refuses new clones until
    /// [`SiteSim::restore`]. Busy-time integrals stop accumulating — lost
    /// partial work was still real work, so the integral up to now stays.
    pub fn fail(&mut self) -> Vec<LostClone> {
        self.down = true;
        self.speeds_valid = false;
        self.active
            .drain(..)
            .map(|a| LostClone {
                tag: a.tag,
                remaining: a.remaining,
            })
            .collect()
    }

    /// Brings a crashed site back, empty and idle, at the current clock.
    pub fn restore(&mut self) {
        self.down = false;
    }

    /// Evicts the clone tagged `tag` (e.g. a deadline abort), returning
    /// its remaining intrinsic time, or `None` if no such clone is
    /// resident. Remaining clones keep their progress; speeds recompute
    /// at the next event as usual.
    pub fn remove_clone(&mut self, tag: usize) -> Option<LostClone> {
        let idx = self.active.iter().position(|a| a.tag == tag)?;
        let a = self.active.remove(idx);
        self.speeds_valid = false;
        Some(LostClone {
            tag: a.tag,
            remaining: a.remaining,
        })
    }

    /// Sum of the resident clones' full-speed demand rates per resource —
    /// the committed load the site ledger mirrors.
    pub fn committed_demand(&self) -> Vec<f64> {
        let mut total = Vec::new();
        self.committed_demand_into(&mut total);
        total
    }

    /// Allocation-free variant of [`SiteSim::committed_demand`]: clears
    /// `out`, resizes it to `d`, and accumulates into it.
    pub fn committed_demand_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.d, 0.0);
        for a in &self.active {
            for (t, dem) in out.iter_mut().zip(&a.demand) {
                *t += dem;
            }
        }
    }

    /// Inserts a clone at the current virtual time. A clone with zero
    /// intrinsic duration completes immediately: its completion (stamped
    /// `now`) is returned instead of being enqueued.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch, a non-finite/negative duration,
    /// or a crashed site.
    pub fn add_clone(&mut self, clone: &SimClone) -> Option<Completion> {
        assert!(!self.down, "cannot place a clone on a crashed site");
        assert_eq!(
            clone.work.dim(),
            self.d,
            "clone dimensionality must match the site"
        );
        assert!(
            clone.duration.is_finite() && clone.duration >= 0.0,
            "clone duration must be finite and non-negative"
        );
        if clone.duration <= 0.0 {
            return Some(Completion {
                tag: clone.tag,
                time: self.now,
            });
        }
        let demand = (0..self.d)
            .map(|i| clone.work[i] / clone.duration)
            .collect();
        self.active.push(Active {
            tag: clone.tag,
            demand,
            remaining: clone.duration,
        });
        self.speeds_valid = false;
        None
    }

    /// The virtual time at which the next resident clone completes under
    /// the current population, or `None` for an idle site. Constant-speed
    /// fluid sharing makes this exact until the population next changes.
    /// Takes `&mut self` to reuse the cached speed solution; the visible
    /// state is unchanged.
    pub fn next_completion_time(&mut self) -> Option<f64> {
        if self.active.is_empty() {
            return None;
        }
        self.ensure_speeds();
        let mut dt = f64::INFINITY;
        for (a, &sc) in self.active.iter().zip(&self.speeds_buf) {
            let eff = sc * self.rate;
            if eff > 0.0 {
                dt = dt.min(a.remaining / eff);
            }
        }
        assert!(
            dt.is_finite(),
            "sharing policy starved every clone (all speeds zero)"
        );
        Some(self.now + dt)
    }

    /// Advances the site to virtual time `t`, appending any completions
    /// (stamped with their exact event times) to `out`. Advancing past
    /// several completions recomputes speeds at each, exactly like the
    /// batch loop.
    ///
    /// # Panics
    /// Panics if `t` precedes the current clock.
    pub fn advance_to(&mut self, t: f64, out: &mut Vec<Completion>) {
        assert!(
            t >= self.now - 1e-12 * self.now.abs().max(1.0),
            "cannot advance backwards: {t} < {}",
            self.now
        );
        while !self.active.is_empty() && self.now < t {
            self.ensure_speeds();
            let mut dt = f64::INFINITY;
            for (a, &sc) in self.active.iter().zip(&self.speeds_buf) {
                let eff = sc * self.rate;
                if eff > 0.0 {
                    dt = dt.min(a.remaining / eff);
                }
            }
            assert!(
                dt.is_finite(),
                "sharing policy starved every clone (all speeds zero)"
            );
            // Record the interval's normalized utilization before the
            // state mutates (the shares are constant across the step).
            // `scratch` is free here: the solver only uses it inside
            // `ensure_speeds`, which clears it on entry.
            let cap = capacity_factor(self.config.timeshare_overhead, self.active.len());
            self.scratch.clear();
            self.scratch.resize(self.d, 0.0);
            for (a, &sc) in self.active.iter().zip(&self.speeds_buf) {
                for (u, dem) in self.scratch.iter_mut().zip(&a.demand) {
                    *u += sc * dem;
                }
            }
            for (p, &u) in self.peak_util.iter_mut().zip(&self.scratch) {
                let norm = u / cap;
                if norm > *p {
                    *p = norm;
                }
            }
            let full_step = dt <= t - self.now;
            let step = dt.min(t - self.now);
            // `scratch` still holds the interval's raw utilization `u`;
            // the trajectory is constant across the step, so this is the
            // exact integral contribution, and the optional series entry
            // is the interval itself.
            for (acc, &u) in self.util_integral.iter_mut().zip(&self.scratch) {
                *acc += (u / cap) * step;
            }
            if let Some(series) = &mut self.util_series {
                if step > 0.0 {
                    series.push(UtilSample {
                        start: self.now,
                        len: step,
                        util: self.scratch.iter().map(|u| u / cap).collect(),
                    });
                }
            }
            self.now += step;
            for (a, &sc) in self.active.iter_mut().zip(&self.speeds_buf) {
                let eff = sc * self.rate;
                a.remaining -= eff * step;
                for (b, dem) in self.busy.iter_mut().zip(&a.demand) {
                    *b += eff * dem * step;
                }
            }
            // The decrement above stales the cached speed solution.
            self.speeds_valid = false;
            // Sweep completions unconditionally: a partial step that lands
            // within floating-point noise of a completion must still
            // retire the clone, or callers advancing to a global event
            // time computed as `now + dt` elsewhere could spin.
            let mut i = 0;
            let mut finished_this_round = 0;
            while i < self.active.len() {
                if self.active[i].remaining <= 1e-12 * self.now.max(1.0) {
                    let a = self.active.swap_remove(i);
                    out.push(Completion {
                        tag: a.tag,
                        time: self.now,
                    });
                    finished_this_round += 1;
                } else {
                    i += 1;
                }
            }
            if full_step {
                assert!(finished_this_round > 0, "event loop made no progress");
            } else if finished_this_round == 0 {
                // Partial advance: nobody finished, clock reached `t`.
                break;
            }
        }
        if self.active.is_empty() && t > self.now {
            // Idle gap: the clock still moves.
            self.now = t;
        }
    }
}

/// Simulates one site hosting `clones` from time zero until all complete.
///
/// Returns completions in time order; the site finish time is the last
/// completion (or `0.0` for no clones). Equivalent to driving a
/// [`SiteSim`] event by event until drained.
pub fn simulate_site(clones: &[SimClone], config: &SimConfig, d: usize) -> Vec<Completion> {
    let mut sim = SiteSim::new(*config, d);
    let mut completions: Vec<Completion> = Vec::with_capacity(clones.len());
    for c in clones {
        if let Some(done) = sim.add_clone(c) {
            completions.push(done);
        }
    }
    while let Some(t) = sim.next_completion_time() {
        sim.advance_to(t, &mut completions);
    }
    completions.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.tag.cmp(&b.tag)));
    completions
}

/// The site's finish time: the last completion.
pub fn site_finish(completions: &[Completion]) -> f64 {
    completions.iter().map(|c| c.time).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clone(tag: usize, w: &[f64], duration: f64) -> SimClone {
        SimClone {
            tag,
            work: WorkVector::from_slice(w),
            duration,
        }
    }

    #[test]
    fn lone_clone_runs_at_full_speed() {
        for policy in [SharingPolicy::EqualFinish, SharingPolicy::FairShare] {
            let cfg = SimConfig {
                policy,
                timeshare_overhead: 0.0,
            };
            let done = simulate_site(&[clone(0, &[3.0, 1.0], 4.0)], &cfg, 2);
            assert_eq!(done.len(), 1);
            assert!(
                (done[0].time - 4.0).abs() < 1e-9,
                "{policy:?}: {}",
                done[0].time
            );
        }
    }

    #[test]
    fn empty_site_finishes_immediately() {
        let done = simulate_site(&[], &SimConfig::default(), 3);
        assert!(done.is_empty());
        assert_eq!(site_finish(&done), 0.0);
    }

    #[test]
    fn zero_duration_clone_completes_at_zero() {
        let done = simulate_site(&[clone(7, &[0.0, 0.0], 0.0)], &SimConfig::default(), 2);
        assert_eq!(done, vec![Completion { tag: 7, time: 0.0 }]);
    }

    #[test]
    fn equal_finish_reproduces_paper_example() {
        // Section 5.2.2: (22, [10,15]) + (10, [10,5]) → site time 22;
        // (22, [10,15]) + (10, [5,10]) → 25.
        let cfg = SimConfig::default();
        let done = simulate_site(
            &[clone(0, &[10.0, 15.0], 22.0), clone(1, &[10.0, 5.0], 10.0)],
            &cfg,
            2,
        );
        assert!((site_finish(&done) - 22.0).abs() < 1e-9);

        let done = simulate_site(
            &[clone(0, &[10.0, 15.0], 22.0), clone(1, &[5.0, 10.0], 10.0)],
            &cfg,
            2,
        );
        assert!((site_finish(&done) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_never_beats_congestion_bound() {
        let cfg = SimConfig {
            policy: SharingPolicy::FairShare,
            timeshare_overhead: 0.0,
        };
        let clones = [clone(0, &[10.0, 15.0], 22.0), clone(1, &[5.0, 10.0], 10.0)];
        let finish = site_finish(&simulate_site(&clones, &cfg, 2));
        // l(sum) = max(15, 25) = 25 and slowest clone is 22.
        assert!(finish >= 25.0 - 1e-9, "finish {finish}");
    }

    #[test]
    fn fair_share_uncongested_clones_run_at_full_speed() {
        let cfg = SimConfig {
            policy: SharingPolicy::FairShare,
            timeshare_overhead: 0.0,
        };
        // Combined peak demand ≤ 1 on each resource: no throttling.
        let clones = [
            clone(0, &[2.0, 0.0], 10.0), // demands 0.2 on r0
            clone(1, &[0.0, 3.0], 10.0), // demands 0.3 on r1
        ];
        let done = simulate_site(&clones, &cfg, 2);
        assert!((site_finish(&done) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_slows_sharing_but_not_solo() {
        let cfg = SimConfig {
            policy: SharingPolicy::EqualFinish,
            timeshare_overhead: 0.5,
        };
        let solo = site_finish(&simulate_site(&[clone(0, &[8.0, 0.0], 8.0)], &cfg, 2));
        assert!((solo - 8.0).abs() < 1e-9, "a lone clone pays no overhead");
        // Two congesting clones pay the penalty: aggregate CPU work 16
        // at capacity 1/(1+0.5) → at least 24 time units.
        let both = site_finish(&simulate_site(
            &[clone(0, &[8.0, 0.0], 8.0), clone(1, &[8.0, 0.0], 8.0)],
            &cfg,
            2,
        ));
        assert!(both >= 16.0, "overhead must bite: {both}");
    }

    #[test]
    fn completions_sorted_by_time() {
        let cfg = SimConfig {
            policy: SharingPolicy::FairShare,
            timeshare_overhead: 0.0,
        };
        let clones = [
            clone(0, &[1.0, 0.0], 10.0),
            clone(1, &[0.5, 0.0], 2.0),
            clone(2, &[0.2, 0.0], 1.0),
        ];
        let done = simulate_site(&clones, &cfg, 2);
        for pair in done.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert_eq!(done.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn dimension_mismatch_panics() {
        simulate_site(&[clone(0, &[1.0], 1.0)], &SimConfig::default(), 2);
    }

    #[test]
    fn site_sim_advances_clock_through_idle_gaps() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        let mut out = Vec::new();
        sim.advance_to(5.0, &mut out);
        assert_eq!(sim.now(), 5.0);
        assert!(out.is_empty());
        assert_eq!(sim.resident(), 0);
    }

    #[test]
    fn site_sim_staggered_insertion_stretches_later_clone() {
        // One CPU-bound clone alone for 5s, then a second identical clone
        // arrives: from t=5 both share the congested CPU. EqualFinish
        // stretches to the common horizon: remaining work 5+10 at unit
        // capacity → both done at t=20.
        let cfg = SimConfig::default();
        let mut sim = SiteSim::new(cfg, 2);
        let mut out = Vec::new();
        assert!(sim.add_clone(&clone(0, &[10.0, 0.0], 10.0)).is_none());
        sim.advance_to(5.0, &mut out);
        assert!(out.is_empty());
        assert!(sim.add_clone(&clone(1, &[10.0, 0.0], 10.0)).is_none());
        while let Some(t) = sim.next_completion_time() {
            sim.advance_to(t, &mut out);
        }
        assert_eq!(out.len(), 2);
        let last = out.iter().map(|c| c.time).fold(0.0, f64::max);
        assert!((last - 20.0).abs() < 1e-9, "finish {last}");
    }

    #[test]
    fn site_sim_busy_integral_matches_work() {
        // Total integrated busy time per resource equals the work actually
        // processed, independent of sharing.
        let cfg = SimConfig::default();
        let mut sim = SiteSim::new(cfg, 2);
        let mut out = Vec::new();
        sim.add_clone(&clone(0, &[10.0, 15.0], 22.0));
        sim.add_clone(&clone(1, &[10.0, 5.0], 10.0));
        while let Some(t) = sim.next_completion_time() {
            sim.advance_to(t, &mut out);
        }
        assert!(
            (sim.busy()[0] - 20.0).abs() < 1e-9,
            "cpu busy {}",
            sim.busy()[0]
        );
        assert!(
            (sim.busy()[1] - 20.0).abs() < 1e-9,
            "r1 busy {}",
            sim.busy()[1]
        );
    }

    #[test]
    fn util_integral_is_exact_series_integral() {
        // A lone CPU clone: utilization 1.0 on r0 for its 8s lifetime,
        // so the integral is exactly 8 and the series has one interval.
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        sim.enable_util_series();
        sim.add_clone(&clone(0, &[8.0, 0.0], 8.0));
        let mut out = Vec::new();
        let t = sim.next_completion_time().unwrap();
        sim.advance_to(t, &mut out);
        assert!((sim.util_integral()[0] - 8.0).abs() < 1e-9);
        assert_eq!(sim.util_integral()[1], 0.0);
        let series = sim.util_series().expect("series enabled above");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].start, 0.0);
        // The integral equals Σ len·util over the recorded series, bit
        // for bit — the cross-check mrs-audit applies when the series is
        // exported.
        let from_series: f64 = series.iter().map(|s| s.len * s.util[0]).sum();
        assert_eq!(from_series.to_bits(), sim.util_integral()[0].to_bits());
    }

    #[test]
    fn util_series_recording_changes_no_arithmetic() {
        let drive = |record: bool| {
            let mut sim = SiteSim::new(SimConfig::default(), 2);
            if record {
                sim.enable_util_series();
            }
            sim.add_clone(&clone(0, &[10.0, 15.0], 22.0));
            sim.add_clone(&clone(1, &[10.0, 5.0], 10.0));
            let mut out = Vec::new();
            while let Some(t) = sim.next_completion_time() {
                sim.advance_to(t, &mut out);
            }
            (
                out.iter().map(|c| c.time.to_bits()).collect::<Vec<_>>(),
                sim.busy().iter().map(|b| b.to_bits()).collect::<Vec<_>>(),
                sim.util_integral()
                    .iter()
                    .map(|u| u.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn average_utilization_never_exceeds_one() {
        // Oversubscribe the site: the fluid sharing time-shares, so both
        // the peak and the time-average normalized utilization stay ≤ 1.
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        sim.add_clone(&clone(0, &[8.0, 0.0], 8.0));
        sim.add_clone(&clone(1, &[8.0, 0.0], 8.0));
        let mut out = Vec::new();
        while let Some(t) = sim.next_completion_time() {
            sim.advance_to(t, &mut out);
        }
        let horizon = sim.now();
        assert!(horizon > 0.0);
        let avg = sim.util_integral()[0] / horizon;
        assert!(avg <= 1.0 + 1e-9, "average utilization {avg}");
        assert!(avg > 0.9, "oversubscribed site should be near-saturated");
    }

    #[test]
    fn site_sim_zero_duration_completes_inline() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        let mut out = Vec::new();
        sim.advance_to(3.0, &mut out);
        let done = sim.add_clone(&clone(9, &[0.0, 0.0], 0.0)).unwrap();
        assert_eq!(done.tag, 9);
        assert_eq!(done.time, 3.0);
    }

    #[test]
    fn straggler_rate_stretches_completions_exactly() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        sim.set_rate(0.5);
        assert_eq!(sim.rate(), 0.5);
        sim.add_clone(&clone(0, &[4.0, 0.0], 4.0));
        let t = sim.next_completion_time().unwrap();
        assert!((t - 8.0).abs() < 1e-9, "half-rate doubles duration: {t}");
        let mut out = Vec::new();
        sim.advance_to(t, &mut out);
        assert_eq!(out.len(), 1);
        // Busy integral records realized (rate-scaled) demand: the work
        // processed is unchanged, only spread over twice the time.
        assert!((sim.busy()[0] - 4.0).abs() < 1e-9, "busy {}", sim.busy()[0]);
    }

    #[test]
    fn full_rate_is_bit_exact_with_default() {
        let drive = |set: bool| {
            let mut sim = SiteSim::new(SimConfig::default(), 2);
            if set {
                sim.set_rate(1.0);
            }
            sim.add_clone(&clone(0, &[10.0, 15.0], 22.0));
            sim.add_clone(&clone(1, &[10.0, 5.0], 10.0));
            let mut out = Vec::new();
            while let Some(t) = sim.next_completion_time() {
                sim.advance_to(t, &mut out);
            }
            (
                out.iter().map(|c| c.time.to_bits()).collect::<Vec<_>>(),
                sim.busy().iter().map(|b| b.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn fail_evicts_partial_clones_and_restore_reopens() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        let mut out = Vec::new();
        sim.add_clone(&clone(0, &[8.0, 0.0], 8.0));
        sim.add_clone(&clone(1, &[2.0, 0.0], 2.0));
        sim.advance_to(1.0, &mut out);
        assert!(out.is_empty());
        let lost = sim.fail();
        assert!(sim.is_down());
        assert_eq!(sim.resident(), 0);
        assert_eq!(sim.next_completion_time(), None);
        assert_eq!(lost.len(), 2);
        assert_eq!(lost[0].tag, 0);
        assert_eq!(lost[1].tag, 1);
        // EqualFinish shares: total demand 1.25 on CPU → horizon 10 from
        // t=0, so after 1s clone 0 ran at 8/10 and clone 1 at 2/10.
        assert!((lost[0].remaining - 7.2).abs() < 1e-9, "{:?}", lost[0]);
        assert!((lost[1].remaining - 1.8).abs() < 1e-9, "{:?}", lost[1]);
        // The clock still advances through the outage; busy stays frozen.
        let busy = sim.busy()[0];
        sim.advance_to(5.0, &mut out);
        assert_eq!(sim.now(), 5.0);
        assert_eq!(sim.busy()[0], busy);
        sim.restore();
        assert!(!sim.is_down());
        assert!(sim.add_clone(&clone(2, &[1.0, 0.0], 1.0)).is_none());
        assert_eq!(sim.resident(), 1);
    }

    #[test]
    #[should_panic(expected = "crashed site")]
    fn down_site_refuses_clones() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        sim.fail();
        sim.add_clone(&clone(0, &[1.0, 0.0], 1.0));
    }

    #[test]
    fn remove_clone_evicts_by_tag() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        sim.add_clone(&clone(3, &[4.0, 0.0], 4.0));
        sim.add_clone(&clone(9, &[4.0, 0.0], 4.0));
        assert_eq!(sim.remove_clone(7), None);
        let lost = sim.remove_clone(3).expect("tag 3 resident");
        assert_eq!(lost.tag, 3);
        assert!((lost.remaining - 4.0).abs() < 1e-12);
        assert_eq!(sim.resident(), 1);
        // The survivor now runs alone at full speed.
        let t = sim.next_completion_time().unwrap();
        assert!((t - 4.0).abs() < 1e-9, "survivor finish {t}");
    }

    #[test]
    fn site_sim_committed_demand_tracks_population() {
        let mut sim = SiteSim::new(SimConfig::default(), 2);
        sim.add_clone(&clone(0, &[4.0, 2.0], 8.0)); // demand [0.5, 0.25]
        let d = sim.committed_demand();
        assert!((d[0] - 0.5).abs() < 1e-12 && (d[1] - 0.25).abs() < 1e-12);
        let mut out = Vec::new();
        let t = sim.next_completion_time().unwrap();
        sim.advance_to(t, &mut out);
        assert_eq!(sim.committed_demand(), vec![0.0, 0.0]);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_clones() -> impl Strategy<Value = Vec<SimClone>> {
        proptest::collection::vec(
            (proptest::collection::vec(0.0f64..10.0, 3), 0.0f64..1.0),
            1..6,
        )
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (w, slack))| {
                    let wv = WorkVector::new(w);
                    // Duration between max (perfect overlap) and sum.
                    let duration = wv.length() + slack * (wv.total() - wv.length());
                    SimClone {
                        tag: i,
                        work: wv,
                        duration,
                    }
                })
                .collect()
        })
    }

    proptest! {
        /// Equation (2): under A2/A3 the EqualFinish site finish time is
        /// exactly max(max_c T_c, l(Σ W_c)).
        #[test]
        fn equal_finish_matches_equation_2(clones in arb_clones()) {
            let cfg = SimConfig::default();
            let finish = site_finish(&simulate_site(&clones, &cfg, 3));
            let max_t = clones.iter().map(|c| c.duration).fold(0.0, f64::max);
            let l = WorkVector::set_length(clones.iter().map(|c| &c.work).collect::<Vec<_>>());
            let expected = max_t.max(l);
            prop_assert!((finish - expected).abs() <= 1e-6 * expected.max(1.0),
                "sim {finish} vs Eq(2) {expected}");
        }

        /// Any policy respects the two lower bounds of Equation (2).
        #[test]
        fn all_policies_respect_lower_bounds(clones in arb_clones()) {
            for policy in [SharingPolicy::EqualFinish, SharingPolicy::FairShare] {
                let cfg = SimConfig { policy, timeshare_overhead: 0.0 };
                let finish = site_finish(&simulate_site(&clones, &cfg, 3));
                let max_t = clones.iter().map(|c| c.duration).fold(0.0, f64::max);
                let l = WorkVector::set_length(clones.iter().map(|c| &c.work).collect::<Vec<_>>());
                prop_assert!(finish + 1e-7 * finish.max(1.0) >= max_t.max(l));
            }
        }

        /// Overhead can only hurt.
        #[test]
        fn overhead_monotone(clones in arb_clones(), ovh in 0.0f64..2.0) {
            let base = site_finish(&simulate_site(&clones, &SimConfig::default(), 3));
            let cfg = SimConfig { policy: SharingPolicy::EqualFinish, timeshare_overhead: ovh };
            let slowed = site_finish(&simulate_site(&clones, &cfg, 3));
            prop_assert!(slowed + 1e-9 >= base);
        }
    }
}
