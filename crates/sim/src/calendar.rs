//! A lazy event calendar over a population of [`SiteSim`]s.
//!
//! The naive online loop asks every site for its next completion time at
//! every global event — an `O(P)` rescan (each involving a speed solve)
//! per event, which dominates the serving hot path at large `P`. The
//! calendar replaces the rescan with a [`BinaryHeap`] of
//! `(time, site, generation)` entries, maintained *lazily*:
//!
//! * an entry is pushed only for sites marked dirty since the last query
//!   ([`EventCalendar::invalidate`]), so an untouched site's entry is
//!   computed once and reused across arbitrarily many global events;
//! * invalidation is O(1) — the site's generation counter bumps, and any
//!   queued entry with a stale generation is discarded when it surfaces
//!   at the heap top (the classic lazy-deletion heap).
//!
//! Correctness leans on the fluid engine's invariant that a site's next
//! completion time is exact until its population next changes: the caller
//! must `invalidate` a site on *every* mutation (clone added or removed,
//! crash, restore, or an `advance_to` that decremented remaining work).
//! Between an entry's computation and its pop nothing touches the site,
//! so the stored time is the same value a fresh query would return —
//! determinism is preserved bit for bit.
//!
//! Sites advance lazily too: [`EventCalendar::advance_due`] only advances
//! the sites whose entries are due at the global event time, in site-index
//! order. Sites whose completions lie in the future keep their (lagging)
//! local clocks; the runtime catches them up on demand when it next
//! touches them.

use crate::engine::{Completion, SiteSim};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled site completion. Ordered by `(time, site, generation)`
/// with a total order on time, so heap pops are fully deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry {
    time: f64,
    site: usize,
    generation: u64,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.site.cmp(&other.site))
            .then(self.generation.cmp(&other.generation))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The lazy site-completion calendar. See the [module docs](self).
#[derive(Debug)]
pub struct EventCalendar {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Current generation per site; heap entries from older generations
    /// are stale and discarded on pop.
    generation: Vec<u64>,
    /// Sites mutated since the last refresh (deduplicated via `dirty`).
    dirty: Vec<bool>,
    dirty_list: Vec<usize>,
    /// Scratch for the due-site collection in `advance_due`.
    due_buf: Vec<usize>,
}

impl EventCalendar {
    /// A calendar over `sites` sites, all initially dirty (their first
    /// query computes fresh entries).
    pub fn new(sites: usize) -> Self {
        EventCalendar {
            heap: BinaryHeap::with_capacity(sites + 1),
            generation: vec![0; sites],
            dirty: vec![true; sites],
            dirty_list: (0..sites).collect(),
            due_buf: Vec::new(),
        }
    }

    /// Marks `site` stale: its generation bumps (so any queued entry is
    /// discarded when popped) and a fresh entry is computed on the next
    /// query. Must be called after *every* mutation of the site.
    pub fn invalidate(&mut self, site: usize) {
        self.generation[site] += 1;
        if !self.dirty[site] {
            self.dirty[site] = true;
            self.dirty_list.push(site);
        }
    }

    /// Recomputes entries for every dirty site. Sorted so heap insertion
    /// order — and therefore the heap's internal layout — is a pure
    /// function of the site state, independent of invalidation order.
    fn refresh(&mut self, sims: &mut [SiteSim]) {
        if self.dirty_list.is_empty() {
            return;
        }
        self.dirty_list.sort_unstable();
        for site in self.dirty_list.drain(..) {
            self.dirty[site] = false;
            if let Some(time) = sims[site].next_completion_time() {
                self.heap.push(Reverse(Entry {
                    time,
                    site,
                    generation: self.generation[site],
                }));
            }
        }
    }

    /// The earliest valid completion time across all sites, or `None`
    /// when every site is idle. Identical to folding
    /// `next_completion_time` over all of `sims` (the value each entry
    /// stores is the one the site itself reported).
    pub fn next_time(&mut self, sims: &mut [SiteSim]) -> Option<f64> {
        self.refresh(sims);
        while let Some(&Reverse(e)) = self.heap.peek() {
            if e.generation == self.generation[e.site] {
                return Some(e.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Advances every site whose entry is due at or before `t` up to `t`
    /// (in site-index order, matching the old advance-everything loop),
    /// appending their completions to `out` and invalidating them. Sites
    /// with entries beyond `t` — and idle sites — are left untouched.
    pub fn advance_due(&mut self, t: f64, sims: &mut [SiteSim], out: &mut Vec<Completion>) {
        self.advance_due_observed(t, sims, out, |_, _| {});
    }

    /// [`EventCalendar::advance_due`] with an observer: after each due
    /// site advances, `observe(site, slice)` is invoked with that site's
    /// newly appended completions. The observed arithmetic is identical
    /// to the plain variant (which delegates here with a no-op closure);
    /// the hook exists so a per-shard executor can attribute completions
    /// to their site for its audit-trace segment without re-deriving the
    /// due set.
    pub fn advance_due_observed(
        &mut self,
        t: f64,
        sims: &mut [SiteSim],
        out: &mut Vec<Completion>,
        mut observe: impl FnMut(usize, &[Completion]),
    ) {
        self.refresh(sims);
        let mut due = std::mem::take(&mut self.due_buf);
        due.clear();
        while let Some(&Reverse(e)) = self.heap.peek() {
            if e.generation != self.generation[e.site] {
                self.heap.pop();
                continue;
            }
            if e.time <= t {
                self.heap.pop();
                due.push(e.site);
            } else {
                break;
            }
        }
        due.sort_unstable();
        due.dedup();
        for &site in &due {
            let start = out.len();
            sims[site].advance_to(t, out);
            self.invalidate(site);
            observe(site, &out[start..]);
        }
        self.due_buf = due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimClone, SimConfig};
    use mrs_core::vector::WorkVector;

    fn clone(tag: usize, w: &[f64], duration: f64) -> SimClone {
        SimClone {
            tag,
            work: WorkVector::from_slice(w),
            duration,
        }
    }

    fn sims(n: usize) -> Vec<SiteSim> {
        (0..n)
            .map(|_| SiteSim::new(SimConfig::default(), 2))
            .collect()
    }

    #[test]
    fn empty_calendar_has_no_events() {
        let mut sims = sims(3);
        let mut cal = EventCalendar::new(3);
        assert_eq!(cal.next_time(&mut sims), None);
        let mut out = Vec::new();
        cal.advance_due(10.0, &mut sims, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn next_time_matches_linear_fold() {
        let mut sims = sims(4);
        let mut cal = EventCalendar::new(4);
        sims[2].add_clone(&clone(0, &[4.0, 0.0], 4.0));
        cal.invalidate(2);
        sims[0].add_clone(&clone(1, &[9.0, 0.0], 9.0));
        cal.invalidate(0);
        let fold = {
            let mut min: Option<f64> = None;
            for s in sims.iter_mut() {
                if let Some(t) = s.next_completion_time() {
                    min = Some(min.map_or(t, |m: f64| m.min(t)));
                }
            }
            min
        };
        assert_eq!(
            cal.next_time(&mut sims).map(f64::to_bits),
            fold.map(f64::to_bits)
        );
    }

    #[test]
    fn stale_entries_are_discarded() {
        let mut sims = sims(2);
        let mut cal = EventCalendar::new(2);
        sims[0].add_clone(&clone(0, &[2.0, 0.0], 2.0));
        cal.invalidate(0);
        assert_eq!(cal.next_time(&mut sims), Some(2.0));
        // Evict the clone: the queued t=2 entry must not be served.
        sims[0].remove_clone(0);
        cal.invalidate(0);
        assert_eq!(cal.next_time(&mut sims), None);
    }

    #[test]
    fn advance_due_only_touches_due_sites() {
        let mut sims = sims(3);
        let mut cal = EventCalendar::new(3);
        sims[0].add_clone(&clone(0, &[1.0, 0.0], 1.0));
        sims[1].add_clone(&clone(1, &[5.0, 0.0], 5.0));
        cal.invalidate(0);
        cal.invalidate(1);
        let t = cal.next_time(&mut sims).unwrap();
        assert_eq!(t, 1.0);
        let mut out = Vec::new();
        cal.advance_due(t, &mut sims, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 0);
        // Site 1 was not due: its local clock lags (lazy advancement).
        assert_eq!(sims[1].now(), 0.0);
        assert_eq!(sims[0].now(), 1.0);
        // Its pending completion is still correctly scheduled.
        assert_eq!(cal.next_time(&mut sims), Some(5.0));
    }

    #[test]
    fn simultaneous_completions_all_pop() {
        let mut sims = sims(2);
        let mut cal = EventCalendar::new(2);
        // Identical clones on identical idle sites complete at the same
        // bit-identical instant; both must advance in one call.
        sims[0].add_clone(&clone(0, &[3.0, 0.0], 3.0));
        sims[1].add_clone(&clone(1, &[3.0, 0.0], 3.0));
        cal.invalidate(0);
        cal.invalidate(1);
        let t = cal.next_time(&mut sims).unwrap();
        let mut out = Vec::new();
        cal.advance_due(t, &mut sims, &mut out);
        let mut tags: Vec<usize> = out.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1]);
        assert_eq!(cal.next_time(&mut sims), None);
    }

    #[test]
    fn observed_advance_matches_plain_and_attributes_sites() {
        let drive = |observed: bool| {
            let mut sims = sims(3);
            let mut cal = EventCalendar::new(3);
            sims[0].add_clone(&clone(0, &[2.0, 0.0], 2.0));
            sims[2].add_clone(&clone(1, &[2.0, 0.0], 2.0));
            cal.invalidate(0);
            cal.invalidate(2);
            let t = cal.next_time(&mut sims).unwrap();
            let mut out = Vec::new();
            let mut seen: Vec<(usize, usize)> = Vec::new();
            if observed {
                cal.advance_due_observed(t, &mut sims, &mut out, |site, done| {
                    seen.push((site, done.len()));
                });
            } else {
                cal.advance_due(t, &mut sims, &mut out);
            }
            (
                out.iter()
                    .map(|c| (c.tag, c.time.to_bits()))
                    .collect::<Vec<_>>(),
                seen,
            )
        };
        let (plain, no_obs) = drive(false);
        let (obs, sites) = drive(true);
        assert_eq!(plain, obs, "observer must not perturb the arithmetic");
        assert!(no_obs.is_empty());
        // Each due site reported once, in site-index order, with its own
        // completions.
        assert_eq!(sites, vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn repeated_queries_are_stable() {
        let mut sims = sims(2);
        let mut cal = EventCalendar::new(2);
        sims[1].add_clone(&clone(0, &[4.0, 2.0], 6.0));
        cal.invalidate(1);
        let a = cal.next_time(&mut sims).unwrap();
        let b = cal.next_time(&mut sims).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
