//! Simulation of whole schedules: each site of a phase runs its resident
//! clones through the fluid engine; synchronized phases execute back to
//! back (Section 5.4's execution discipline).

use crate::engine::{simulate_site, site_finish, SimClone, SimConfig};
use mrs_core::model::ResponseModel;
use mrs_core::operator::OperatorId;
use mrs_core::resource::SystemSpec;
use mrs_core::schedule::PhaseSchedule;
use mrs_core::tree::TreeScheduleResult;

/// Outcome of simulating one phase.
#[derive(Clone, Debug)]
pub struct PhaseSimResult {
    /// Simulated makespan: the latest site finish time.
    pub makespan: f64,
    /// Per-site finish times.
    pub site_finish: Vec<f64>,
    /// Completion time of every operator clone `(op, clone, time)`.
    pub completions: Vec<(OperatorId, usize, f64)>,
}

/// Simulates one phase: every clone starts at time zero on its assigned
/// site (pipelined operators run concurrently under assumption A1), sites
/// evolve independently, and the phase ends when the last site drains.
pub fn simulate_phase<M: ResponseModel>(
    schedule: &PhaseSchedule,
    sys: &SystemSpec,
    model: &M,
    config: &SimConfig,
) -> PhaseSimResult {
    let d = sys.dim();
    // Bucket clones per site, tagging each with (op index, clone index).
    let mut per_site: Vec<Vec<SimClone>> = vec![Vec::new(); sys.sites];
    let mut tags: Vec<(OperatorId, usize)> = Vec::new();
    for (i, op) in schedule.ops.iter().enumerate() {
        for (k, &site) in schedule.assignment.homes[i].iter().enumerate() {
            let work = op.clones[k].clone();
            let duration = model.t_seq(&work);
            let tag = tags.len();
            tags.push((op.spec.id, k));
            per_site[site.0].push(SimClone {
                tag,
                work,
                duration,
            });
        }
    }

    let mut site_times = vec![0.0f64; sys.sites];
    let mut completions = Vec::with_capacity(tags.len());
    for (s, clones) in per_site.iter().enumerate() {
        let done = simulate_site(clones, config, d);
        site_times[s] = site_finish(&done);
        for c in done {
            let (op, clone) = tags[c.tag];
            completions.push((op, clone, c.time));
        }
    }
    PhaseSimResult {
        makespan: site_times.iter().copied().fold(0.0, f64::max),
        site_finish: site_times,
        completions,
    }
}

/// Simulates a full TREESCHEDULE result: phases run back to back; the
/// total simulated response time is the sum of simulated phase makespans.
pub fn simulate_tree<M: ResponseModel>(
    result: &TreeScheduleResult,
    sys: &SystemSpec,
    model: &M,
    config: &SimConfig,
) -> f64 {
    result
        .phases
        .iter()
        .map(|p| simulate_phase(&p.schedule, sys, model, config).makespan)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SharingPolicy;
    use mrs_core::comm::CommModel;
    use mrs_core::list::operator_schedule;
    use mrs_core::model::OverlapModel;
    use mrs_core::operator::{OperatorKind, OperatorSpec};
    use mrs_core::tasks::TaskGraph;
    use mrs_core::tree::{tree_schedule, TreeProblem};
    use mrs_core::vector::WorkVector;

    fn ops(n: usize) -> Vec<OperatorSpec> {
        (0..n)
            .map(|i| {
                OperatorSpec::floating(
                    OperatorId(i),
                    OperatorKind::Other,
                    WorkVector::from_slice(&[2.0 + (i % 4) as f64, 1.0 + (i % 3) as f64, 0.0]),
                    200_000.0,
                )
            })
            .collect()
    }

    #[test]
    fn simulated_phase_matches_analytic_makespan() {
        let sys = SystemSpec::homogeneous(6);
        let comm = CommModel::paper_defaults();
        let model = OverlapModel::new(0.4).unwrap();
        let schedule = operator_schedule(ops(8), 0.7, &sys, &comm, &model).unwrap();
        let analytic = schedule.makespan(&sys, &model);
        let sim = simulate_phase(&schedule, &sys, &model, &SimConfig::default());
        assert!(
            (sim.makespan - analytic).abs() <= 1e-9 * analytic.max(1.0),
            "simulated {} vs analytic {analytic}",
            sim.makespan
        );
    }

    #[test]
    fn simulated_tree_matches_analytic_response_time() {
        let sys = SystemSpec::homogeneous(8);
        let comm = CommModel::paper_defaults();
        let model = OverlapModel::new(0.5).unwrap();
        let all = ops(6);
        let ids: Vec<_> = (0..6).map(OperatorId).collect();
        let problem = TreeProblem {
            ops: all,
            tasks: TaskGraph::single_task(ids),
            bindings: vec![],
        };
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        let sim = simulate_tree(&result, &sys, &model, &SimConfig::default());
        assert!(
            (sim - result.response_time).abs() <= 1e-9 * result.response_time.max(1.0),
            "sim {sim} vs analytic {}",
            result.response_time
        );
    }

    #[test]
    fn fair_share_at_least_analytic() {
        let sys = SystemSpec::homogeneous(4);
        let comm = CommModel::paper_defaults();
        let model = OverlapModel::new(0.2).unwrap();
        let schedule = operator_schedule(ops(10), 0.7, &sys, &comm, &model).unwrap();
        let analytic = schedule.makespan(&sys, &model);
        let cfg = SimConfig {
            policy: SharingPolicy::FairShare,
            timeshare_overhead: 0.0,
        };
        let sim = simulate_phase(&schedule, &sys, &model, &cfg);
        assert!(sim.makespan + 1e-6 * analytic >= analytic);
    }

    #[test]
    fn every_clone_completes_exactly_once() {
        let sys = SystemSpec::homogeneous(5);
        let comm = CommModel::paper_defaults();
        let model = OverlapModel::new(0.5).unwrap();
        let schedule = operator_schedule(ops(7), 0.7, &sys, &comm, &model).unwrap();
        let total_clones: usize = schedule.ops.iter().map(|o| o.degree).sum();
        let sim = simulate_phase(&schedule, &sys, &model, &SimConfig::default());
        assert_eq!(sim.completions.len(), total_clones);
        let mut seen: Vec<(usize, usize)> = sim
            .completions
            .iter()
            .map(|(op, k, _)| (op.0, *k))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total_clones);
    }

    #[test]
    fn overhead_increases_simulated_response() {
        let sys = SystemSpec::homogeneous(3);
        let comm = CommModel::paper_defaults();
        let model = OverlapModel::new(0.5).unwrap();
        let schedule = operator_schedule(ops(9), 0.7, &sys, &comm, &model).unwrap();
        let clean = simulate_phase(&schedule, &sys, &model, &SimConfig::default()).makespan;
        let cfg = SimConfig {
            policy: SharingPolicy::EqualFinish,
            timeshare_overhead: 0.4,
        };
        let slowed = simulate_phase(&schedule, &sys, &model, &cfg).makespan;
        assert!(slowed >= clean - 1e-9);
    }
}
