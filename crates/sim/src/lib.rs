//! # mrs-sim — shared-nothing execution simulator
//!
//! A discrete-event *fluid* simulator of multi-resource, preemptable
//! shared-nothing sites. Under the paper's assumptions A2 (free
//! time-sharing) and A3 (uniform resource usage), the simulator's
//! EqualFinish discipline reproduces the analytic site-time formula
//! (Equation 2) exactly — the property tests in [`engine`] verify this —
//! giving an independent check of the paper's cost model. Beyond
//! validation, the simulator supports the paper's Section 8 "future work"
//! knobs: a FairShare discipline that needs no global horizon, and a
//! time-sharing overhead parameter relaxing assumption A2.
//!
//! ```
//! use mrs_sim::prelude::*;
//! use mrs_core::prelude::*;
//!
//! let sys = SystemSpec::homogeneous(4);
//! let comm = CommModel::paper_defaults();
//! let model = OverlapModel::new(0.5).unwrap();
//! let ops = vec![OperatorSpec::floating(
//!     OperatorId(0), OperatorKind::Scan,
//!     WorkVector::from_slice(&[2.0, 6.0, 0.0]), 1_000_000.0,
//! )];
//! let schedule = operator_schedule(ops, 0.7, &sys, &comm, &model).unwrap();
//!
//! let sim = simulate_phase(&schedule, &sys, &model, &SimConfig::default());
//! let analytic = schedule.makespan(&sys, &model);
//! assert!((sim.makespan - analytic).abs() < 1e-9 * analytic.max(1.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod engine;
pub mod fault;
pub mod phase;
pub mod pipeline;

/// One-stop imports.
pub mod prelude {
    pub use crate::calendar::EventCalendar;
    pub use crate::engine::{
        simulate_site, site_finish, Completion, LostClone, SharingPolicy, SimClone, SimConfig,
        SiteSim,
    };
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultTimeline};
    pub use crate::phase::{simulate_phase, simulate_tree, PhaseSimResult};
    pub use crate::pipeline::{simulate_phase_pipelined, PipelineSimResult};
}
