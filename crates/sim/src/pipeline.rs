//! Pipelined execution simulation — stress-testing assumption A3.
//!
//! The paper's model (A3: uniform resource usage) lets every operator of
//! a pipeline progress independently; the analytic site time (Equation 2)
//! follows. Real pipelines are *coupled*: a probe can only consume tuples
//! as fast as its producer emits them. This module simulates the
//! pessimistic extreme — a **tightly coupled, unbuffered** pipeline where
//! a consumer's progress rate never exceeds the progress rate of any of
//! its live producers — and thereby brackets reality between the paper's
//! analytic model (free-running, optimistic) and lockstep execution
//! (pessimistic).
//!
//! Mechanics: clones get *base* speeds from the per-site sharing policy
//! (see [`crate::engine`]); a global pass in topological producer→consumer
//! order then caps each consumer clone's speed so the operator's
//! *fractional* progress rate (`speed / duration`, taken as the minimum
//! over the operator's clones — the slowest clone gates the stream) does
//! not exceed its producers'. Completed producers stop constraining.
//! Since every operator starts at progress 0 and consumer rates never
//! exceed producer rates, `progress(consumer) ≤ progress(producer)` holds
//! invariantly and the only events are clone completions.
//!
//! The one-pass cap is conservative: capacity freed by throttled
//! consumers is not redistributed to other clones on the same site, so
//! reported makespans are upper bounds for the coupled discipline.

use crate::engine::{SharingPolicy, SimConfig};
use mrs_core::model::ResponseModel;
use mrs_core::operator::OperatorId;
use mrs_core::resource::SystemSpec;
use mrs_core::schedule::PhaseSchedule;
use std::collections::HashMap;

/// Result of a pipelined phase simulation.
#[derive(Clone, Debug)]
pub struct PipelineSimResult {
    /// Simulated phase makespan under tight coupling.
    pub makespan: f64,
    /// Completion time of every operator (when its last clone finishes).
    pub op_finish: Vec<(OperatorId, f64)>,
    /// Number of speed-recomputation events processed.
    pub events: usize,
}

struct CloneState {
    op: usize, // dense index into the phase's op list
    site: usize,
    demand: Vec<f64>,
    duration: f64,
    remaining: f64,
}

/// Simulates one phase under tightly coupled pipelines.
///
/// `pipeline_edges` lists `(producer, consumer)` operator pairs; pairs
/// whose endpoints are not both in this phase are ignored (cross-phase
/// edges are blocking by construction).
///
/// # Panics
/// Panics if the pipeline edges within the phase contain a cycle (operator
/// trees never do).
pub fn simulate_phase_pipelined<M: ResponseModel>(
    schedule: &PhaseSchedule,
    pipeline_edges: &[(OperatorId, OperatorId)],
    sys: &SystemSpec,
    model: &M,
    config: &SimConfig,
) -> PipelineSimResult {
    let d = sys.dim();
    let op_index: HashMap<OperatorId, usize> = schedule
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| (op.spec.id, i))
        .collect();
    let m = schedule.ops.len();

    // Producers per op (dense indices), restricted to this phase.
    let mut producers: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (src, dst) in pipeline_edges {
        if let (Some(&s), Some(&t)) = (op_index.get(src), op_index.get(dst)) {
            producers[t].push(s);
            consumers[s].push(t);
        }
    }
    // Topological order (Kahn).
    let mut indegree: Vec<usize> = producers.iter().map(Vec::len).collect();
    let mut topo: Vec<usize> = (0..m).filter(|&i| indegree[i] == 0).collect();
    let mut head = 0;
    while head < topo.len() {
        let u = topo[head];
        head += 1;
        for &v in &consumers[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                topo.push(v);
            }
        }
    }
    assert_eq!(
        topo.len(),
        m,
        "pipeline edges within a phase must be acyclic"
    );

    // Clone states.
    let mut clones: Vec<CloneState> = Vec::new();
    let mut finished_at = vec![0.0f64; m];
    let mut live_clones = vec![0usize; m];
    for (i, op) in schedule.ops.iter().enumerate() {
        for (k, &site) in schedule.assignment.homes[i].iter().enumerate() {
            let w = &op.clones[k];
            let duration = model.t_seq(w);
            if duration <= 0.0 {
                continue;
            }
            live_clones[i] += 1;
            clones.push(CloneState {
                op: i,
                site: site.0,
                demand: (0..d).map(|r| w[r] / duration).collect(),
                duration,
                remaining: duration,
            });
        }
    }

    let mut now = 0.0f64;
    let mut events = 0usize;
    while clones.iter().any(|c| c.remaining > 0.0) {
        events += 1;
        // --- base speeds per site (policy) ---
        let cap = |site: usize| -> f64 {
            let n = clones
                .iter()
                .filter(|c| c.site == site && c.remaining > 0.0)
                .count();
            if n <= 1 {
                1.0
            } else {
                1.0 / (1.0 + config.timeshare_overhead * (n as f64 - 1.0))
            }
        };
        let mut speed: Vec<f64> = vec![0.0; clones.len()];
        for site in 0..sys.sites {
            let members: Vec<usize> = (0..clones.len())
                .filter(|&ci| clones[ci].site == site && clones[ci].remaining > 0.0)
                .collect();
            if members.is_empty() {
                continue;
            }
            let site_cap = cap(site);
            match config.policy {
                SharingPolicy::EqualFinish => {
                    let max_remaining = members
                        .iter()
                        .map(|&ci| clones[ci].remaining)
                        .fold(0.0, f64::max);
                    let mut load = vec![0.0f64; d];
                    for &ci in &members {
                        for (l, dem) in load.iter_mut().zip(&clones[ci].demand) {
                            *l += clones[ci].remaining * dem;
                        }
                    }
                    let congested = load.iter().copied().fold(0.0, f64::max) / site_cap;
                    let horizon = max_remaining.max(congested).max(1e-300);
                    for &ci in &members {
                        speed[ci] = (clones[ci].remaining / horizon).min(1.0);
                    }
                }
                SharingPolicy::FairShare => {
                    for &ci in &members {
                        speed[ci] = 1.0;
                    }
                    for _ in 0..=d {
                        let mut util = vec![0.0f64; d];
                        for &ci in &members {
                            for (u, dem) in util.iter_mut().zip(&clones[ci].demand) {
                                *u += speed[ci] * dem;
                            }
                        }
                        let Some((b, &u_max)) =
                            util.iter().enumerate().max_by(|x, y| x.1.total_cmp(y.1))
                        else {
                            break;
                        };
                        if u_max <= site_cap * (1.0 + 1e-12) {
                            break;
                        }
                        let scale = site_cap / u_max;
                        for &ci in &members {
                            if clones[ci].demand[b] > 0.0 {
                                speed[ci] *= scale;
                            }
                        }
                    }
                }
            }
        }

        // --- pipeline coupling pass: cap consumer fractional rates ---
        // rate(op) = min over live clones of speed/duration; ops with no
        // live clones are done and unconstraining.
        let mut op_rate = vec![f64::INFINITY; m];
        for &u in &topo {
            // Cap this op's clones by its producers first.
            let bound = producers[u]
                .iter()
                .map(|&p| op_rate[p])
                .fold(f64::INFINITY, f64::min);
            let mut rate = f64::INFINITY;
            for (ci, c) in clones.iter().enumerate() {
                if c.op != u || c.remaining <= 0.0 {
                    continue;
                }
                if bound.is_finite() {
                    speed[ci] = speed[ci].min(bound * c.duration);
                }
                rate = rate.min(speed[ci] / c.duration);
            }
            if live_clones[u] > 0 {
                op_rate[u] = rate;
            } // else stays INFINITY: completed producers don't constrain
        }

        // --- advance to the next completion ---
        let mut dt = f64::INFINITY;
        for (ci, c) in clones.iter().enumerate() {
            if c.remaining > 0.0 && speed[ci] > 0.0 {
                dt = dt.min(c.remaining / speed[ci]);
            }
        }
        assert!(
            dt.is_finite() && dt > 0.0,
            "pipelined simulation stalled (all live clones throttled to zero)"
        );
        now += dt;
        for (ci, c) in clones.iter_mut().enumerate() {
            if c.remaining <= 0.0 {
                continue;
            }
            c.remaining -= speed[ci] * dt;
            if c.remaining <= 1e-12 * now.max(1.0) {
                c.remaining = 0.0;
                live_clones[c.op] -= 1;
                if live_clones[c.op] == 0 {
                    finished_at[c.op] = now;
                }
            }
        }
    }

    let op_finish = schedule
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| (op.spec.id, finished_at[i]))
        .collect();
    PipelineSimResult {
        makespan: now,
        op_finish,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::simulate_phase;
    use mrs_core::comm::CommModel;
    use mrs_core::list::operator_schedule;
    use mrs_core::model::OverlapModel;
    use mrs_core::operator::{OperatorKind, OperatorSpec};
    use mrs_core::vector::WorkVector;

    fn two_op_pipeline(
        producer_w: &[f64],
        consumer_w: &[f64],
        sites: usize,
    ) -> (
        PhaseSchedule,
        SystemSpec,
        OverlapModel,
        Vec<(OperatorId, OperatorId)>,
    ) {
        let sys = SystemSpec::homogeneous(sites);
        let comm = CommModel::new(1e-9, 0.0).unwrap();
        let model = OverlapModel::new(0.5).unwrap();
        let ops = vec![
            OperatorSpec::floating(
                OperatorId(0),
                OperatorKind::Scan,
                WorkVector::from_slice(producer_w),
                0.0,
            ),
            OperatorSpec::floating(
                OperatorId(1),
                OperatorKind::Probe,
                WorkVector::from_slice(consumer_w),
                0.0,
            ),
        ];
        let schedule = operator_schedule(ops, 5.0, &sys, &comm, &model).unwrap();
        (schedule, sys, model, vec![(OperatorId(0), OperatorId(1))])
    }

    #[test]
    fn uncoupled_ops_match_plain_simulation() {
        let (schedule, sys, model, _) = two_op_pipeline(&[4.0, 0.0, 0.0], &[2.0, 0.0, 0.0], 4);
        let plain = simulate_phase(&schedule, &sys, &model, &SimConfig::default());
        let piped = simulate_phase_pipelined(&schedule, &[], &sys, &model, &SimConfig::default());
        assert!(
            (piped.makespan - plain.makespan).abs() <= 1e-9 * plain.makespan.max(1.0),
            "no edges => identical behaviour: {} vs {}",
            piped.makespan,
            plain.makespan
        );
    }

    #[test]
    fn slow_producer_throttles_fast_consumer() {
        // Producer is 4x the consumer's duration; tightly coupled, the
        // consumer must stretch to the producer's finish time.
        let (schedule, sys, model, edges) = two_op_pipeline(&[8.0, 0.0, 0.0], &[1.0, 0.0, 0.0], 8);
        let plain = simulate_phase(&schedule, &sys, &model, &SimConfig::default());
        let piped =
            simulate_phase_pipelined(&schedule, &edges, &sys, &model, &SimConfig::default());
        assert!(
            piped.makespan >= plain.makespan - 1e-9,
            "coupling can only slow things down"
        );
        // The consumer finishes with (not before) the producer.
        let finish: HashMap<OperatorId, f64> = piped.op_finish.iter().copied().collect();
        assert!(
            finish[&OperatorId(1)] >= finish[&OperatorId(0)] - 1e-9,
            "consumer cannot finish before its producer under tight coupling"
        );
    }

    #[test]
    fn coupling_never_speeds_up_real_phases() {
        use mrs_core::tasks::TaskGraph;
        use mrs_core::tree::{tree_schedule, TreeProblem};
        let sys = SystemSpec::homogeneous(6);
        let comm = CommModel::paper_defaults();
        let model = OverlapModel::new(0.4).unwrap();
        let ops: Vec<_> = (0..5)
            .map(|i| {
                OperatorSpec::floating(
                    OperatorId(i),
                    OperatorKind::Other,
                    WorkVector::from_slice(&[1.0 + i as f64, 2.0, 0.0]),
                    100_000.0,
                )
            })
            .collect();
        let ids: Vec<_> = (0..5).map(OperatorId).collect();
        let problem = TreeProblem {
            ops,
            tasks: TaskGraph::single_task(ids),
            bindings: vec![],
        };
        let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        let phase = &r.phases[0];
        // Chain all five ops into one pipeline.
        let edges: Vec<_> = (0..4).map(|i| (OperatorId(i), OperatorId(i + 1))).collect();
        let plain = simulate_phase(&phase.schedule, &sys, &model, &SimConfig::default());
        let piped =
            simulate_phase_pipelined(&phase.schedule, &edges, &sys, &model, &SimConfig::default());
        assert!(piped.makespan + 1e-9 >= plain.makespan);
    }

    #[test]
    fn completed_producer_stops_constraining() {
        // Producer much shorter than consumer: once it drains, the
        // consumer runs at full speed; total ≈ consumer's own time.
        let (schedule, sys, model, edges) = two_op_pipeline(&[0.5, 0.0, 0.0], &[8.0, 0.0, 0.0], 8);
        let plain = simulate_phase(&schedule, &sys, &model, &SimConfig::default());
        let piped =
            simulate_phase_pipelined(&schedule, &edges, &sys, &model, &SimConfig::default());
        // Consumer rate-capped only while the producer lives; since the
        // producer's fractional rate >= consumer's anyway, no slowdown.
        assert!((piped.makespan - plain.makespan).abs() <= 0.6 + 1e-9);
    }

    #[test]
    fn cross_phase_edges_ignored() {
        let (schedule, sys, model, _) = two_op_pipeline(&[4.0, 0.0, 0.0], &[2.0, 0.0, 0.0], 4);
        // An edge naming an operator not in this phase must be ignored.
        let edges = vec![(OperatorId(7), OperatorId(1))];
        let piped =
            simulate_phase_pipelined(&schedule, &edges, &sys, &model, &SimConfig::default());
        assert!(piped.makespan > 0.0);
    }

    #[test]
    fn event_count_is_reported() {
        let (schedule, sys, model, edges) = two_op_pipeline(&[8.0, 0.0, 0.0], &[1.0, 0.0, 0.0], 4);
        let piped =
            simulate_phase_pipelined(&schedule, &edges, &sys, &model, &SimConfig::default());
        assert!(piped.events >= 1);
    }
}
