//! Deterministic fault plans: site crash/recover schedules and per-site
//! slowdown (straggler) factors.
//!
//! A [`FaultPlan`] is a *pre-drawn*, fully deterministic schedule of
//! failures: a sorted list of [`FaultEvent`]s (which site crashes or
//! recovers at which virtual time) plus a sparse map of per-site speed
//! factors. The plan is data, not behavior — the online runtime walks it
//! with a [`FaultTimeline`] cursor as virtual time advances and applies
//! each event to the matching [`SiteSim`](crate::engine::SiteSim). Because
//! the plan is drawn up-front from a seed (alternating exponential
//! up/down times, the classic MTBF/MTTR renewal model), two runs over the
//! same seed observe byte-identical failure histories — the property the
//! determinism test suite pins down.

use mrs_core::rng::DetRng;

/// What happens to a site at a fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The site crashes: resident clones are lost, no new clones may be
    /// placed until it recovers.
    Crash,
    /// The site comes back, empty and idle.
    Recover,
}

/// One scheduled fault: `site` crashes or recovers at virtual `time`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual time of the event.
    pub time: f64,
    /// The affected site index.
    pub site: usize,
    /// Crash or recover.
    pub kind: FaultKind,
}

/// A deterministic schedule of site failures and stragglers.
///
/// The empty (default) plan is the exact fault-free system: no events,
/// every site at rate `1.0` — the runtime's arithmetic is bit-identical
/// to a build without the fault layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    slowdowns: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// The empty plan: no failures, no stragglers.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit event script. Events are sorted by
    /// `(time, site, kind)`; equal-time ties therefore resolve
    /// deterministically.
    ///
    /// # Panics
    /// Panics if any event time is non-finite or negative.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        for ev in &events {
            assert!(
                ev.time.is_finite() && ev.time >= 0.0,
                "fault event time must be finite and non-negative, got {}",
                ev.time
            );
        }
        events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.site.cmp(&b.site))
                .then(a.kind.cmp(&b.kind))
        });
        FaultPlan {
            events,
            slowdowns: Vec::new(),
        }
    }

    /// Marks `site` as a straggler running at `factor` of full speed.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and in `(0, 1]`.
    pub fn with_slowdown(mut self, site: usize, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "slowdown factor must lie in (0, 1], got {factor}"
        );
        self.slowdowns.retain(|(s, _)| *s != site);
        self.slowdowns.push((site, factor));
        self.slowdowns.sort_by_key(|(s, _)| *s);
        self
    }

    /// Draws a crash/recover renewal schedule for `sites` sites over
    /// `[0, horizon]`: each site alternates an `Exp(1/mtbf)` up-time with
    /// an `Exp(1/mttr)` down-time, independently seeded per site so the
    /// schedule of site `j` does not depend on how many sites exist
    /// before it.
    ///
    /// A non-positive or non-finite `mtbf` yields the empty plan (the
    /// "no failures" sentinel used by experiment sweeps).
    ///
    /// # Panics
    /// Panics if `mttr` is non-positive/non-finite while `mtbf` is
    /// positive, or if `horizon` is negative/non-finite.
    pub fn seeded(sites: usize, horizon: f64, mtbf: f64, mttr: f64, seed: u64) -> Self {
        assert!(
            horizon.is_finite() && horizon >= 0.0,
            "fault horizon must be finite and non-negative, got {horizon}"
        );
        if !(mtbf.is_finite() && mtbf > 0.0) {
            return FaultPlan::none();
        }
        assert!(
            mttr.is_finite() && mttr > 0.0,
            "mttr must be finite and positive, got {mttr}"
        );
        let mut events = Vec::new();
        for site in 0..sites {
            let mut rng =
                DetRng::seed_from_u64(seed ^ (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut t = 0.0f64;
            loop {
                t += rng.gen_exp(1.0 / mtbf);
                if t > horizon {
                    break;
                }
                events.push(FaultEvent {
                    time: t,
                    site,
                    kind: FaultKind::Crash,
                });
                t += rng.gen_exp(1.0 / mttr);
                if t > horizon {
                    break;
                }
                events.push(FaultEvent {
                    time: t,
                    site,
                    kind: FaultKind::Recover,
                });
            }
        }
        FaultPlan::scripted(events)
    }

    /// True for the fault-free plan (no events, no stragglers).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.slowdowns.is_empty()
    }

    /// The sorted event schedule.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The straggler map as `(site, factor)` pairs, sorted by site.
    pub fn slowdowns(&self) -> &[(usize, f64)] {
        &self.slowdowns
    }

    /// The speed factor of `site` (`1.0` unless marked a straggler).
    pub fn slowdown(&self, site: usize) -> f64 {
        self.slowdowns
            .iter()
            .find(|(s, _)| *s == site)
            .map_or(1.0, |(_, f)| *f)
    }
}

/// A consuming cursor over a [`FaultPlan`]'s events in time order.
#[derive(Clone, Debug)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultTimeline {
    /// A cursor at the start of `plan`'s schedule.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultTimeline {
            events: plan.events().to_vec(),
            next: 0,
        }
    }

    /// Time of the next unconsumed event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.events.get(self.next).map(|e| e.time)
    }

    /// Consumes and returns the next event if it is due at or before `t`.
    pub fn pop_due(&mut self, t: f64) -> Option<FaultEvent> {
        let ev = *self.events.get(self.next)?;
        if ev.time <= t {
            self.next += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Number of events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.events(), &[]);
        assert_eq!(p.slowdown(3), 1.0);
        let mut tl = FaultTimeline::new(&p);
        assert_eq!(tl.peek_time(), None);
        assert_eq!(tl.pop_due(1e18), None);
    }

    #[test]
    fn scripted_sorts_events() {
        let p = FaultPlan::scripted(vec![
            FaultEvent {
                time: 5.0,
                site: 1,
                kind: FaultKind::Recover,
            },
            FaultEvent {
                time: 2.0,
                site: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                time: 5.0,
                site: 0,
                kind: FaultKind::Crash,
            },
        ]);
        let times: Vec<(f64, usize)> = p.events().iter().map(|e| (e.time, e.site)).collect();
        assert_eq!(times, vec![(2.0, 0), (5.0, 0), (5.0, 1)]);
    }

    #[test]
    fn seeded_is_deterministic_and_alternates_per_site() {
        let a = FaultPlan::seeded(6, 500.0, 40.0, 10.0, 77);
        let b = FaultPlan::seeded(6, 500.0, 40.0, 10.0, 77);
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        assert!(!a.is_empty(), "a 500s horizon at MTBF 40 should fail");
        for site in 0..6 {
            let mut expect = FaultKind::Crash;
            for ev in a.events().iter().filter(|e| e.site == site) {
                assert_eq!(ev.kind, expect, "site {site} must alternate crash/recover");
                expect = if expect == FaultKind::Crash {
                    FaultKind::Recover
                } else {
                    FaultKind::Crash
                };
                assert!(ev.time <= 500.0);
            }
        }
        let c = FaultPlan::seeded(6, 500.0, 40.0, 10.0, 78);
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn seeded_sites_are_independent_of_site_count() {
        // Adding sites must not perturb the schedules of existing ones.
        let small = FaultPlan::seeded(2, 300.0, 30.0, 8.0, 9);
        let large = FaultPlan::seeded(5, 300.0, 30.0, 8.0, 9);
        let filt = |p: &FaultPlan| {
            p.events()
                .iter()
                .filter(|e| e.site < 2)
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(filt(&small), filt(&large));
    }

    #[test]
    fn non_positive_mtbf_means_no_faults() {
        assert!(FaultPlan::seeded(4, 100.0, 0.0, 5.0, 1).is_empty());
        assert!(FaultPlan::seeded(4, 100.0, f64::INFINITY, 5.0, 1).is_empty());
    }

    #[test]
    fn slowdown_lookup() {
        let p = FaultPlan::none()
            .with_slowdown(2, 0.5)
            .with_slowdown(0, 0.8);
        assert_eq!(p.slowdown(0), 0.8);
        assert_eq!(p.slowdown(1), 1.0);
        assert_eq!(p.slowdown(2), 0.5);
        assert_eq!(p.slowdowns(), &[(0, 0.8), (2, 0.5)]);
        // Re-marking a site replaces its factor.
        let p = p.with_slowdown(2, 0.9);
        assert_eq!(p.slowdown(2), 0.9);
    }

    #[test]
    fn timeline_pops_in_order() {
        let p = FaultPlan::seeded(3, 200.0, 25.0, 5.0, 3);
        let mut tl = FaultTimeline::new(&p);
        let total = tl.remaining();
        assert_eq!(total, p.events().len());
        let mut seen = Vec::new();
        while let Some(t) = tl.peek_time() {
            assert_eq!(tl.pop_due(t - 1e-9), None, "not due yet");
            let ev = tl.pop_due(t).expect("due event pops");
            seen.push(ev.time);
        }
        assert_eq!(seen.len(), total);
        assert!(seen.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn zero_slowdown_rejected() {
        let _ = FaultPlan::none().with_slowdown(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_event_time_rejected() {
        let _ = FaultPlan::scripted(vec![FaultEvent {
            time: -1.0,
            site: 0,
            kind: FaultKind::Crash,
        }]);
    }
}
