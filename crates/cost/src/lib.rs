//! # mrs-cost — cost-model substrate
//!
//! Derives the multi-dimensional resource requirements (work vectors) of
//! physical query operators from DBMS statistics and the hardware
//! parameters of Table 2, following the hash-join cost equations of Hsiao
//! et al. \[HCY94\], and assembles complete
//! [`TreeProblem`](mrs_core::tree::TreeProblem)s from execution plans.
//!
//! ```
//! use mrs_cost::prelude::*;
//! use mrs_plan::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! let a = catalog.add_relation("a", 10_000.0);
//! let b = catalog.add_relation("b", 40_000.0);
//! let plan = PlanTree::left_deep(&[a, b]);
//!
//! let cost = CostModel::paper_defaults();
//! let problem = problem_from_plan(
//!     &plan, &catalog, &KeyJoinMax, &cost, &ScanPlacement::Floating,
//! ).unwrap();
//! assert_eq!(problem.ops.len(), 4); // scan, scan, build, probe
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assemble;
pub mod opcost;
pub mod params;

/// One-stop imports.
pub mod prelude {
    pub use crate::assemble::{problem_from_optree, problem_from_plan, AssembleError};
    pub use crate::opcost::{operator_specs, CostError, CostModel, ScanPlacement};
    pub use crate::params::{table_2, CpuCosts, SystemParams};
}
