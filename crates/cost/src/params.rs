//! System and catalog parameters (Table 2 of the paper).
//!
//! All times are seconds, all sizes bytes. CPU costs are expressed in
//! instructions and converted through the CPU speed (1 MIPS in the paper,
//! i.e. 1 µs per instruction — chosen so the simulated system is neither
//! heavily CPU- nor IO-bound).

use mrs_core::comm::CommModel;

/// Per-operation CPU instruction counts (Table 2, lower half).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuCosts {
    /// Instructions to read a page from disk.
    pub read_page: f64,
    /// Instructions to write a page to disk.
    pub write_page: f64,
    /// Instructions to extract (copy/form) a tuple.
    pub extract_tuple: f64,
    /// Instructions to hash a tuple.
    pub hash_tuple: f64,
    /// Instructions to probe a hash table.
    pub probe_table: f64,
    /// Instructions per comparison in an in-memory sort (our extension;
    /// not part of Table 2 — sorts do not appear in the paper's plans).
    pub sort_compare: f64,
}

impl CpuCosts {
    /// Table 2 values.
    pub fn paper_defaults() -> Self {
        CpuCosts {
            read_page: 5_000.0,
            write_page: 5_000.0,
            extract_tuple: 300.0,
            hash_tuple: 100.0,
            probe_table: 200.0,
            sort_compare: 50.0,
        }
    }
}

/// The full experimental parameter set (Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemParams {
    /// CPU speed in MIPS.
    pub cpu_mips: f64,
    /// Effective disk service time per page, seconds.
    pub disk_page_time: f64,
    /// Startup cost per participating site `α`, seconds.
    pub startup_alpha: f64,
    /// Network transfer cost per byte `β`, seconds.
    pub net_beta: f64,
    /// Tuple size in bytes.
    pub tuple_bytes: f64,
    /// Tuples per page.
    pub page_tuples: f64,
    /// CPU instruction costs.
    pub cpu: CpuCosts,
}

impl SystemParams {
    /// Table 2 values: 1 MIPS CPU, 20 ms/page disk, `α` = 15 ms,
    /// `β` = 0.6 µs/byte, 128-byte tuples, 40 tuples/page.
    pub fn paper_defaults() -> Self {
        SystemParams {
            cpu_mips: 1.0,
            disk_page_time: 0.020,
            startup_alpha: 0.015,
            net_beta: 0.6e-6,
            tuple_bytes: 128.0,
            page_tuples: 40.0,
            cpu: CpuCosts::paper_defaults(),
        }
    }

    /// Seconds consumed by `instructions` CPU instructions.
    #[inline]
    pub fn instr_time(&self, instructions: f64) -> f64 {
        instructions / (self.cpu_mips * 1e6)
    }

    /// Pages occupied by `tuples` tuples (fractional; the cost model works
    /// in expectations).
    #[inline]
    pub fn pages(&self, tuples: f64) -> f64 {
        tuples / self.page_tuples
    }

    /// Bytes occupied by `tuples` tuples.
    #[inline]
    pub fn bytes(&self, tuples: f64) -> f64 {
        tuples * self.tuple_bytes
    }

    /// The communication model these parameters induce.
    pub fn comm_model(&self) -> CommModel {
        CommModel::new(self.startup_alpha, self.net_beta).expect("paper parameters are valid")
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams::paper_defaults()
    }
}

/// Renders the parameter set in the layout of Table 2 (used by the
/// `table2` experiment).
pub fn table_2(params: &SystemParams) -> String {
    let mut s = String::new();
    s.push_str("Configuration/Catalog Parameters      | Value\n");
    s.push_str("--------------------------------------+---------------\n");
    s.push_str(&format!(
        "CPU Speed                             | {} MIPS\n",
        params.cpu_mips
    ));
    s.push_str(&format!(
        "Effective Disk Service Time per page  | {} msec\n",
        params.disk_page_time * 1e3
    ));
    s.push_str(&format!(
        "Startup Cost per site (alpha)         | {} msec\n",
        params.startup_alpha * 1e3
    ));
    s.push_str(&format!(
        "Network Transfer Cost per byte (beta) | {} usec\n",
        params.net_beta * 1e6
    ));
    s.push_str(&format!(
        "Tuple Size                            | {} bytes\n",
        params.tuple_bytes
    ));
    s.push_str(&format!(
        "Page Size                             | {} tuples\n",
        params.page_tuples
    ));
    s.push_str("CPU Cost Parameters                   | No. of Instr.\n");
    s.push_str("--------------------------------------+---------------\n");
    s.push_str(&format!(
        "Read Page from Disk                   | {}\n",
        params.cpu.read_page
    ));
    s.push_str(&format!(
        "Write Page to Disk                    | {}\n",
        params.cpu.write_page
    ));
    s.push_str(&format!(
        "Extract Tuple                         | {}\n",
        params.cpu.extract_tuple
    ));
    s.push_str(&format!(
        "Hash Tuple                            | {}\n",
        params.cpu.hash_tuple
    ));
    s.push_str(&format!(
        "Probe Hash Table                      | {}\n",
        params.cpu.probe_table
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_2() {
        let p = SystemParams::paper_defaults();
        assert_eq!(p.cpu_mips, 1.0);
        assert_eq!(p.disk_page_time, 0.020);
        assert_eq!(p.startup_alpha, 0.015);
        assert_eq!(p.net_beta, 0.6e-6);
        assert_eq!(p.tuple_bytes, 128.0);
        assert_eq!(p.page_tuples, 40.0);
        assert_eq!(p.cpu.read_page, 5_000.0);
        assert_eq!(p.cpu.probe_table, 200.0);
    }

    #[test]
    fn instr_time_at_one_mips() {
        let p = SystemParams::paper_defaults();
        // 5000 instructions at 1 MIPS = 5 ms.
        assert!((p.instr_time(5_000.0) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn pages_and_bytes() {
        let p = SystemParams::paper_defaults();
        assert_eq!(p.pages(4_000.0), 100.0);
        assert_eq!(p.bytes(10.0), 1_280.0);
    }

    #[test]
    fn comm_model_uses_alpha_beta() {
        let p = SystemParams::paper_defaults();
        let c = p.comm_model();
        assert_eq!(c.alpha, 0.015);
        assert_eq!(c.beta, 0.6e-6);
    }

    #[test]
    fn table_2_lists_every_parameter() {
        let s = table_2(&SystemParams::paper_defaults());
        for needle in [
            "CPU Speed",
            "1 MIPS",
            "20 msec",
            "15 msec",
            "0.6 usec",
            "128 bytes",
            "40 tuples",
            "5000",
            "300",
            "100",
            "200",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }
}
