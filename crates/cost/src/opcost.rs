//! Per-operator work vectors: converting plan annotations into the
//! multi-dimensional resource requirements of Section 4.
//!
//! The CPU and disk components follow the hash-join cost equations of
//! Hsiao et al. \[HCY94\] with Table 2's instruction counts; the network
//! dimension of the *processing* vector is zero (all communication cost is
//! carried by the `αN + βD` model of Section 4.3 and added per
//! parallelization). Hash tables are memory-resident (assumption A1), so
//! builds and probes do no disk work.
//!
//! **Transfer attribution.** Following the paper's definition of `D` ("the
//! total size of the operator's input and output data sets transferred
//! over the interconnect"), every operator is charged for the bytes it
//! *receives* and the bytes it *sends*: a transfer costs network-interface
//! time at both endpoints. A scan receives nothing over the network (its
//! input is the local disk) and a build sends nothing (its hash table
//! stays local). With Table 2's parameters this makes the coarse-grain
//! condition genuinely restrictive at small `f` (the behaviour Figure 5(a)
//! reports), because `beta*D / W_p` is about 0.38 for a combined
//! build+probe join stage (see `mrs_core::tree::coupled_degree` and
//! DESIGN.md).
//!
//! | operator | CPU | disk | bytes over interconnect `D` |
//! |---|---|---|---|
//! | scan R | pages*read + tuples*extract | pages*t_disk | out (send) |
//! | build  | in*hash | 0 | in (receive; table stays local) |
//! | probe  | outer*probe + out*extract | 0 | outer (receive) + out (send) |

use crate::params::SystemParams;
use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec, Placement};
use mrs_core::resource::{SiteId, SiteSpec};
use mrs_core::vector::WorkVector;
use mrs_plan::optree::{OpDetail, OperatorTree};

/// Errors raised when deriving work vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostError {
    /// The site layout lacks a disk dimension but the plan contains scans.
    NoDiskDimension,
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::NoDiskDimension => {
                write!(
                    f,
                    "site layout has no disk resource but the plan scans base relations"
                )
            }
        }
    }
}

impl std::error::Error for CostError {}

/// Derives work vectors and interconnect data volumes for plan operators.
#[derive(Clone, Debug)]
pub struct CostModel {
    params: SystemParams,
    site: SiteSpec,
}

impl CostModel {
    /// Creates a cost model for the given parameters and site layout.
    pub fn new(params: SystemParams, site: SiteSpec) -> Self {
        CostModel { params, site }
    }

    /// Paper defaults on the `[Cpu, Disk, Network]` layout.
    pub fn paper_defaults() -> Self {
        CostModel::new(SystemParams::paper_defaults(), SiteSpec::cpu_disk_net())
    }

    /// The parameters in use.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The site layout in use.
    pub fn site(&self) -> &SiteSpec {
        &self.site
    }

    /// The *processing* work vector `W_p` of an operator (zero
    /// communication costs).
    ///
    /// # Errors
    /// [`CostError::NoDiskDimension`] for scans on diskless layouts.
    pub fn processing_vector(&self, detail: &OpDetail) -> Result<WorkVector, CostError> {
        let p = &self.params;
        let d = self.site.dim();
        let mut w = WorkVector::zeros(d);
        match detail {
            OpDetail::Scan { out_tuples, .. } => {
                let pages = p.pages(*out_tuples);
                // Stripe the I/O evenly across however many disk units the
                // site layout declares (one in the paper's experiments).
                let disk_dims: Vec<usize> = self
                    .site
                    .dims_of(mrs_core::resource::ResourceKind::Disk)
                    .collect();
                if disk_dims.is_empty() {
                    return Err(CostError::NoDiskDimension);
                }
                let per_disk = pages * p.disk_page_time / disk_dims.len() as f64;
                for dim in disk_dims {
                    w.add_at(dim, per_disk);
                }
                w.add_at(
                    self.site.cpu_dim(),
                    p.instr_time(pages * p.cpu.read_page + out_tuples * p.cpu.extract_tuple),
                );
            }
            OpDetail::Build { in_tuples, .. } => {
                w.add_at(
                    self.site.cpu_dim(),
                    p.instr_time(in_tuples * p.cpu.hash_tuple),
                );
            }
            OpDetail::Probe {
                outer_tuples,
                out_tuples,
                ..
            } => {
                w.add_at(
                    self.site.cpu_dim(),
                    p.instr_time(
                        outer_tuples * p.cpu.probe_table + out_tuples * p.cpu.extract_tuple,
                    ),
                );
            }
            OpDetail::Aggregate {
                in_tuples,
                out_tuples,
            } => {
                // Hash each input tuple into its group; extract each
                // emitted group (A1: the group table is memory-resident).
                w.add_at(
                    self.site.cpu_dim(),
                    p.instr_time(in_tuples * p.cpu.hash_tuple + out_tuples * p.cpu.extract_tuple),
                );
            }
            OpDetail::Sort { in_tuples } => {
                // n·log2(n) comparisons plus one extract per emitted tuple
                // (A1: in-memory sort, no spill I/O).
                let n = in_tuples.max(1.0);
                w.add_at(
                    self.site.cpu_dim(),
                    p.instr_time(
                        n * n.log2().max(1.0) * p.cpu.sort_compare
                            + in_tuples * p.cpu.extract_tuple,
                    ),
                );
            }
        }
        Ok(w)
    }

    /// The operator's interconnect traffic `D` in bytes: all data it
    /// receives or sends over the network (assumption A5 — pipelined
    /// outputs are always repartitioned). See the module docs for the
    /// per-operator attribution.
    pub fn data_volume(&self, detail: &OpDetail) -> f64 {
        let p = &self.params;
        match detail {
            OpDetail::Scan { out_tuples, .. } => p.bytes(*out_tuples),
            OpDetail::Build { in_tuples, .. } => p.bytes(*in_tuples),
            OpDetail::Probe {
                outer_tuples,
                out_tuples,
                ..
            } => p.bytes(*outer_tuples) + p.bytes(*out_tuples),
            OpDetail::Aggregate {
                in_tuples,
                out_tuples,
            } => p.bytes(*in_tuples) + p.bytes(*out_tuples),
            OpDetail::Sort { in_tuples } => 2.0 * p.bytes(*in_tuples),
        }
    }

    /// Converts an operator-tree node into a scheduler-facing
    /// [`OperatorSpec`], floating by default.
    pub fn operator_spec(
        &self,
        id: OperatorId,
        kind: OperatorKind,
        detail: &OpDetail,
    ) -> Result<OperatorSpec, CostError> {
        Ok(OperatorSpec::floating(
            id,
            kind,
            self.processing_vector(detail)?,
            self.data_volume(detail),
        ))
    }
}

/// How base-relation scans are placed (the paper does not pin this down;
/// see DESIGN.md).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanPlacement {
    /// Scans are floating: the scheduler declusters base relations freely
    /// (the experiment default).
    Floating,
    /// Scan `i` is rooted on `degree` consecutive sites starting at
    /// `(i · degree) mod P` — a deterministic round-robin declustering.
    RoundRobin {
        /// Clones per scan.
        degree: usize,
        /// Number of sites `P` in the target system.
        sites: usize,
    },
}

/// Builds the full set of [`OperatorSpec`]s for an operator tree.
///
/// # Errors
/// Propagates [`CostError`]; also panics if `RoundRobin.degree` is zero or
/// exceeds `sites` (caller bug).
pub fn operator_specs(
    tree: &OperatorTree,
    cost: &CostModel,
    placement: &ScanPlacement,
) -> Result<Vec<OperatorSpec>, CostError> {
    let mut specs = Vec::with_capacity(tree.len());
    let mut scan_counter = 0usize;
    for node in tree.nodes() {
        let mut spec = cost.operator_spec(node.id, node.kind, &node.detail)?;
        if let (OpDetail::Scan { .. }, ScanPlacement::RoundRobin { degree, sites }) =
            (&node.detail, placement)
        {
            assert!(
                *degree >= 1 && degree <= sites,
                "invalid round-robin placement"
            );
            let start = (scan_counter * degree) % sites;
            let homes: Vec<SiteId> = (0..*degree).map(|k| SiteId((start + k) % sites)).collect();
            spec.placement = Placement::Rooted(homes);
            scan_counter += 1;
        }
        specs.push(spec);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::resource::ResourceKind;
    use mrs_plan::cardinality::KeyJoinMax;
    use mrs_plan::plan::PlanTree;
    use mrs_plan::relation::Catalog;

    fn one_join_tree() -> OperatorTree {
        let mut c = Catalog::new();
        let a = c.add_relation("a", 4_000.0);
        let b = c.add_relation("b", 8_000.0);
        let p = PlanTree::left_deep(&[a, b]);
        OperatorTree::expand(&p.annotate(&c, &KeyJoinMax))
    }

    #[test]
    fn scan_vector_matches_hand_computation() {
        let cost = CostModel::paper_defaults();
        let detail = OpDetail::Scan {
            relation: mrs_plan::relation::RelationId(0),
            out_tuples: 4_000.0,
        };
        let w = cost.processing_vector(&detail).unwrap();
        // 4000 tuples = 100 pages.
        // disk: 100 × 20ms = 2 s.
        assert!((w[1] - 2.0).abs() < 1e-12);
        // cpu: 100×5000 + 4000×300 = 1.7e6 instr = 1.7 s at 1 MIPS.
        assert!((w[0] - 1.7).abs() < 1e-12);
        // net processing component is zero (comm handled by αN + βD).
        assert_eq!(w[2], 0.0);
        // D = 4000 × 128 bytes.
        assert_eq!(cost.data_volume(&detail), 512_000.0);
    }

    #[test]
    fn build_vector_is_pure_cpu() {
        let cost = CostModel::paper_defaults();
        let detail = OpDetail::Build {
            in_tuples: 8_000.0,
            probe: OperatorId(0),
        };
        let w = cost.processing_vector(&detail).unwrap();
        // 8000 × 100 instr = 0.8 s.
        assert!((w[0] - 0.8).abs() < 1e-12);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[2], 0.0);
        // Receives its whole input over the interconnect (8000 x 128).
        assert_eq!(cost.data_volume(&detail), 1_024_000.0);
    }

    #[test]
    fn probe_vector_counts_probe_and_result_extraction() {
        let cost = CostModel::paper_defaults();
        let detail = OpDetail::Probe {
            outer_tuples: 4_000.0,
            out_tuples: 8_000.0,
            build: OperatorId(0),
        };
        let w = cost.processing_vector(&detail).unwrap();
        // 4000×200 + 8000×300 = 3.2e6 instr = 3.2 s.
        assert!((w[0] - 3.2).abs() < 1e-12);
        assert_eq!(w[1], 0.0);
        // D = (4000 received + 8000 sent) x 128 bytes.
        assert_eq!(cost.data_volume(&detail), 1_536_000.0);
    }

    #[test]
    fn scan_on_diskless_layout_errors() {
        let site = SiteSpec::new(vec![ResourceKind::Cpu, ResourceKind::Network]).unwrap();
        let cost = CostModel::new(SystemParams::paper_defaults(), site);
        let detail = OpDetail::Scan {
            relation: mrs_plan::relation::RelationId(0),
            out_tuples: 100.0,
        };
        assert_eq!(
            cost.processing_vector(&detail),
            Err(CostError::NoDiskDimension)
        );
    }

    #[test]
    fn operator_specs_cover_whole_tree() {
        let tree = one_join_tree();
        let cost = CostModel::paper_defaults();
        let specs = operator_specs(&tree, &cost, &ScanPlacement::Floating).unwrap();
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.is_floating()));
        // Ids stay dense and aligned.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id, OperatorId(i));
        }
        // Every spec carries positive processing work.
        assert!(specs.iter().all(|s| s.processing_area() > 0.0));
        // Every operator moves data over the interconnect (dual-endpoint
        // attribution: scans send, builds receive, probes do both).
        assert!(specs.iter().all(|s| s.data_volume > 0.0));
    }

    #[test]
    fn round_robin_roots_scans_only() {
        let tree = one_join_tree();
        let cost = CostModel::paper_defaults();
        let specs = operator_specs(
            &tree,
            &cost,
            &ScanPlacement::RoundRobin {
                degree: 2,
                sites: 8,
            },
        )
        .unwrap();
        let mut scan_homes = Vec::new();
        for s in &specs {
            match s.kind {
                OperatorKind::Scan => {
                    let homes = s.rooted_homes().expect("scans must be rooted");
                    assert_eq!(homes.len(), 2);
                    scan_homes.push(homes.to_vec());
                }
                _ => assert!(s.is_floating()),
            }
        }
        assert_eq!(scan_homes.len(), 2);
        assert_ne!(scan_homes[0], scan_homes[1], "round robin must rotate");
    }

    #[test]
    fn round_robin_wraps_around() {
        let tree = one_join_tree();
        let cost = CostModel::paper_defaults();
        let specs = operator_specs(
            &tree,
            &cost,
            &ScanPlacement::RoundRobin {
                degree: 2,
                sites: 3,
            },
        )
        .unwrap();
        for s in specs.iter().filter(|s| s.kind == OperatorKind::Scan) {
            for site in s.rooted_homes().unwrap() {
                assert!(site.0 < 3);
            }
        }
    }
}
