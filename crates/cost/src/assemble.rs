//! End-to-end assembly: execution plan → fully costed
//! [`TreeProblem`] ready for TREESCHEDULE.

use crate::opcost::{operator_specs, CostError, CostModel, ScanPlacement};
use mrs_core::error::ScheduleError;
use mrs_core::tree::TreeProblem;
use mrs_plan::cardinality::CardinalityModel;
use mrs_plan::decompose::decompose;
use mrs_plan::optree::OperatorTree;
use mrs_plan::plan::PlanTree;
use mrs_plan::relation::Catalog;

/// Everything that can go wrong assembling a scheduling problem.
#[derive(Clone, Debug, PartialEq)]
pub enum AssembleError {
    /// Work-vector derivation failed.
    Cost(CostError),
    /// Task decomposition or problem validation failed.
    Schedule(ScheduleError),
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::Cost(e) => write!(f, "cost model: {e}"),
            AssembleError::Schedule(e) => write!(f, "schedule structure: {e}"),
        }
    }
}

impl std::error::Error for AssembleError {}

impl From<CostError> for AssembleError {
    fn from(e: CostError) -> Self {
        AssembleError::Cost(e)
    }
}

impl From<ScheduleError> for AssembleError {
    fn from(e: ScheduleError) -> Self {
        AssembleError::Schedule(e)
    }
}

/// Assembles a [`TreeProblem`] from an already-expanded operator tree.
pub fn problem_from_optree(
    tree: &OperatorTree,
    cost: &CostModel,
    placement: &ScanPlacement,
) -> Result<TreeProblem, AssembleError> {
    let specs = operator_specs(tree, cost, placement)?;
    let decomposition = decompose(tree)?;
    let problem = TreeProblem {
        ops: specs,
        tasks: decomposition.tasks,
        bindings: decomposition.bindings,
    };
    problem.validate()?;
    Ok(problem)
}

/// Assembles a [`TreeProblem`] straight from a plan tree: annotates
/// cardinalities, macro-expands into the operator tree, derives work
/// vectors, and decomposes into tasks.
pub fn problem_from_plan(
    plan: &PlanTree,
    catalog: &Catalog,
    cardinality: &impl CardinalityModel,
    cost: &CostModel,
    placement: &ScanPlacement,
) -> Result<TreeProblem, AssembleError> {
    let annotated = plan.annotate(catalog, cardinality);
    let tree = OperatorTree::expand(&annotated);
    problem_from_optree(&tree, cost, placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::model::OverlapModel;
    use mrs_core::resource::SystemSpec;
    use mrs_core::tree::tree_schedule;
    use mrs_plan::cardinality::KeyJoinMax;

    fn fixture() -> (PlanTree, Catalog) {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..4)
            .map(|i| c.add_relation(format!("r{i}"), 2_000.0 * (i + 1) as f64))
            .collect();
        (PlanTree::left_deep(&ids), c)
    }

    #[test]
    fn assembled_problem_validates() {
        let (plan, catalog) = fixture();
        let cost = CostModel::paper_defaults();
        let problem = problem_from_plan(
            &plan,
            &catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        assert_eq!(problem.ops.len(), 3 * 3 + 1);
        assert_eq!(problem.bindings.len(), 3);
        problem.validate().unwrap();
    }

    #[test]
    fn assembled_problem_schedules_end_to_end() {
        let (plan, catalog) = fixture();
        let cost = CostModel::paper_defaults();
        let problem = problem_from_plan(
            &plan,
            &catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        let sys = SystemSpec::homogeneous(16);
        let model = OverlapModel::new(0.5).unwrap();
        let comm = cost.params().comm_model();
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        assert!(result.response_time > 0.0);
        // Left-deep: two phases (builds+scans, then the probe pipeline).
        assert_eq!(result.phases.len(), 2);
    }

    #[test]
    fn aggregated_plan_schedules_in_extra_phase() {
        use mrs_plan::plan::UnaryKind;
        let (plan, catalog) = fixture();
        let agg_plan = plan.with_unary_root(UnaryKind::HashAggregate {
            output_fraction: 0.05,
        });
        let cost = CostModel::paper_defaults();
        let base = problem_from_plan(
            &plan,
            &catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        let problem = problem_from_plan(
            &agg_plan,
            &catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        assert_eq!(problem.ops.len(), base.ops.len() + 1);
        // The aggregate's blocking input adds one more synchronized phase.
        assert_eq!(problem.tasks.height(), base.tasks.height() + 1);
        let sys = SystemSpec::homogeneous(12);
        let model = OverlapModel::new(0.5).unwrap();
        let comm = cost.params().comm_model();
        let with_agg = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        let without = tree_schedule(&base, 0.7, &sys, &comm, &model).unwrap();
        assert_eq!(with_agg.phases.len(), without.phases.len() + 1);
        assert!(with_agg.response_time > without.response_time);
    }

    #[test]
    fn rooted_scans_flow_through() {
        let (plan, catalog) = fixture();
        let cost = CostModel::paper_defaults();
        let problem = problem_from_plan(
            &plan,
            &catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::RoundRobin {
                degree: 2,
                sites: 8,
            },
        )
        .unwrap();
        let rooted = problem.ops.iter().filter(|o| !o.is_floating()).count();
        assert_eq!(rooted, 4, "all four scans rooted");
        // Still schedulable.
        let sys = SystemSpec::homogeneous(8);
        let model = OverlapModel::new(0.5).unwrap();
        let comm = cost.params().comm_model();
        let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        assert!(r.response_time > 0.0);
    }
}
