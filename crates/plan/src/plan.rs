//! Bushy execution plan trees.
//!
//! An execution plan tree (Figure 1(a)) is a binary tree whose leaves are
//! base-relation scans and whose internal nodes are (hash) joins. The left
//! child is the *outer* (probe-side) input, the right child the *inner*
//! (build-side) input. Arbitrary bushy shapes are allowed — the paper's
//! central target is precisely the general bushy case that earlier work
//! avoided.

use crate::cardinality::CardinalityModel;
use crate::relation::{Catalog, RelationId};
use std::fmt;

/// Identifier of a node within a [`PlanTree`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanNodeId(pub usize);

impl fmt::Display for PlanNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unary (single-input) plan operators layered over the join tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnaryKind {
    /// Hash aggregation emitting `output_fraction · input` groups
    /// (blocking: no group is final until all input has arrived).
    HashAggregate {
        /// Output cardinality as a fraction of the input, in `(0, 1]`.
        output_fraction: f64,
    },
    /// In-memory sort (blocking; cardinality-preserving).
    Sort,
}

/// A node of an execution plan tree.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    /// Scan of a base relation.
    Scan(RelationId),
    /// Hash join; `outer` feeds the probe, `inner` feeds the build.
    Join {
        /// Probe-side input.
        outer: PlanNodeId,
        /// Build-side input.
        inner: PlanNodeId,
    },
    /// A unary operator over one input.
    Unary {
        /// What the operator does.
        kind: UnaryKind,
        /// The producing child.
        input: PlanNodeId,
    },
}

/// An arena-allocated bushy execution plan tree.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanTree {
    nodes: Vec<PlanNode>,
    root: PlanNodeId,
}

/// Errors detected by [`PlanTree::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A join child id is out of range.
    DanglingChild(PlanNodeId),
    /// A node is referenced by two parents or the root is a child.
    NotATree(PlanNodeId),
    /// Some node is unreachable from the root.
    Unreachable(PlanNodeId),
    /// The root id is out of range.
    BadRoot(PlanNodeId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DanglingChild(n) => write!(f, "join child {n} does not exist"),
            PlanError::NotATree(n) => write!(f, "node {n} has more than one parent"),
            PlanError::Unreachable(n) => write!(f, "node {n} is unreachable from the root"),
            PlanError::BadRoot(n) => write!(f, "root {n} does not exist"),
        }
    }
}

impl std::error::Error for PlanError {}

impl PlanTree {
    /// Builds and validates a plan tree over an arena of nodes.
    pub fn new(nodes: Vec<PlanNode>, root: PlanNodeId) -> Result<Self, PlanError> {
        if root.0 >= nodes.len() {
            return Err(PlanError::BadRoot(root));
        }
        let mut parents = vec![0usize; nodes.len()];
        for node in &nodes {
            let children: Vec<PlanNodeId> = match node {
                PlanNode::Scan(_) => vec![],
                PlanNode::Join { outer, inner } => vec![*outer, *inner],
                PlanNode::Unary { input, .. } => vec![*input],
            };
            for child in children {
                if child.0 >= nodes.len() {
                    return Err(PlanError::DanglingChild(child));
                }
                parents[child.0] += 1;
            }
        }
        for (i, &p) in parents.iter().enumerate() {
            if p > 1 || (i == root.0 && p != 0) {
                return Err(PlanError::NotATree(PlanNodeId(i)));
            }
        }
        // Reachability from the root (iterative; bushy 50-join plans are
        // shallow but left-deep chains are not).
        let mut seen = vec![false; nodes.len()];
        let mut stack = vec![root.0];
        while let Some(n) = stack.pop() {
            if seen[n] {
                return Err(PlanError::NotATree(PlanNodeId(n)));
            }
            seen[n] = true;
            match &nodes[n] {
                PlanNode::Scan(_) => {}
                PlanNode::Join { outer, inner } => {
                    stack.push(outer.0);
                    stack.push(inner.0);
                }
                PlanNode::Unary { input, .. } => stack.push(input.0),
            }
        }
        if let Some(i) = seen.iter().position(|s| !s) {
            return Err(PlanError::Unreachable(PlanNodeId(i)));
        }
        Ok(PlanTree { nodes, root })
    }

    /// A plan consisting of a single base-relation scan.
    pub fn scan_only(relation: RelationId) -> Self {
        PlanTree {
            nodes: vec![PlanNode::Scan(relation)],
            root: PlanNodeId(0),
        }
    }

    /// The root node id.
    pub fn root(&self) -> PlanNodeId {
        self.root
    }

    /// The node arena.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Looks a node up.
    pub fn node(&self, id: PlanNodeId) -> &PlanNode {
        &self.nodes[id.0]
    }

    /// Number of joins in the plan.
    pub fn join_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, PlanNode::Join { .. }))
            .count()
    }

    /// Number of base-relation scans.
    pub fn scan_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, PlanNode::Scan(_)))
            .count()
    }

    /// Number of unary operators (aggregates + sorts).
    pub fn unary_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, PlanNode::Unary { .. }))
            .count()
    }

    /// Returns a copy of this plan with a unary operator stacked on the
    /// root (e.g. a final aggregation or an ORDER BY sort).
    ///
    /// # Panics
    /// Panics when a `HashAggregate` fraction lies outside `(0, 1]`.
    pub fn with_unary_root(&self, kind: UnaryKind) -> PlanTree {
        if let UnaryKind::HashAggregate { output_fraction } = kind {
            assert!(
                output_fraction > 0.0 && output_fraction <= 1.0,
                "aggregate output fraction must be in (0, 1], got {output_fraction}"
            );
        }
        let mut nodes = self.nodes.clone();
        nodes.push(PlanNode::Unary {
            kind,
            input: self.root,
        });
        let root = PlanNodeId(nodes.len() - 1);
        PlanTree::new(nodes, root).expect("stacking a unary root preserves tree-ness")
    }

    /// Tree height (a lone scan has height 0).
    pub fn height(&self) -> usize {
        // Iterative post-order with memoized heights.
        let mut height = vec![usize::MAX; self.nodes.len()];
        let mut stack = vec![self.root.0];
        while let Some(&n) = stack.last() {
            match &self.nodes[n] {
                PlanNode::Scan(_) => {
                    height[n] = 0;
                    stack.pop();
                }
                PlanNode::Join { outer, inner } => {
                    let (ho, hi) = (height[outer.0], height[inner.0]);
                    if ho != usize::MAX && hi != usize::MAX {
                        height[n] = 1 + ho.max(hi);
                        stack.pop();
                    } else {
                        if ho == usize::MAX {
                            stack.push(outer.0);
                        }
                        if hi == usize::MAX {
                            stack.push(inner.0);
                        }
                    }
                }
                PlanNode::Unary { input, .. } => {
                    if height[input.0] != usize::MAX {
                        height[n] = 1 + height[input.0];
                        stack.pop();
                    } else {
                        stack.push(input.0);
                    }
                }
            }
        }
        height[self.root.0]
    }

    /// Annotates every node with its output cardinality using `model`.
    pub fn annotate(&self, catalog: &Catalog, model: &impl CardinalityModel) -> AnnotatedPlan {
        let mut out_tuples = vec![f64::NAN; self.nodes.len()];
        // Post-order, iterative.
        let mut stack = vec![self.root.0];
        while let Some(&n) = stack.last() {
            match &self.nodes[n] {
                PlanNode::Scan(r) => {
                    out_tuples[n] = catalog.get(*r).tuples;
                    stack.pop();
                }
                PlanNode::Join { outer, inner } => {
                    let (o, i) = (out_tuples[outer.0], out_tuples[inner.0]);
                    if !o.is_nan() && !i.is_nan() {
                        out_tuples[n] = model.join_output(o, i);
                        stack.pop();
                    } else {
                        if o.is_nan() {
                            stack.push(outer.0);
                        }
                        if i.is_nan() {
                            stack.push(inner.0);
                        }
                    }
                }
                PlanNode::Unary { kind, input } => {
                    let x = out_tuples[input.0];
                    if !x.is_nan() {
                        out_tuples[n] = match kind {
                            UnaryKind::HashAggregate { output_fraction } => x * output_fraction,
                            UnaryKind::Sort => x,
                        };
                        stack.pop();
                    } else {
                        stack.push(input.0);
                    }
                }
            }
        }
        AnnotatedPlan {
            plan: self.clone(),
            out_tuples,
        }
    }

    /// Builds a left-deep plan joining `relations` in order (first two
    /// joined first; each later relation becomes the inner/build side).
    ///
    /// # Panics
    /// Panics when fewer than one relation is supplied.
    pub fn left_deep(relations: &[RelationId]) -> Self {
        assert!(!relations.is_empty(), "a plan needs at least one relation");
        let mut nodes: Vec<PlanNode> = Vec::new();
        let mut current = {
            nodes.push(PlanNode::Scan(relations[0]));
            PlanNodeId(0)
        };
        for &r in &relations[1..] {
            nodes.push(PlanNode::Scan(r));
            let scan = PlanNodeId(nodes.len() - 1);
            nodes.push(PlanNode::Join {
                outer: current,
                inner: scan,
            });
            current = PlanNodeId(nodes.len() - 1);
        }
        PlanTree::new(nodes, current).expect("left-deep construction is structurally sound")
    }

    /// Builds a right-deep plan over `relations` (all builds stack on the
    /// inner side — the classic pipelined hash-join shape).
    ///
    /// # Panics
    /// Panics when fewer than one relation is supplied.
    pub fn right_deep(relations: &[RelationId]) -> Self {
        assert!(!relations.is_empty(), "a plan needs at least one relation");
        let mut nodes: Vec<PlanNode> = Vec::new();
        let n = relations.len();
        let mut current = {
            nodes.push(PlanNode::Scan(relations[n - 1]));
            PlanNodeId(0)
        };
        for &r in relations[..n - 1].iter().rev() {
            nodes.push(PlanNode::Scan(r));
            let scan = PlanNodeId(nodes.len() - 1);
            nodes.push(PlanNode::Join {
                outer: scan,
                inner: current,
            });
            current = PlanNodeId(nodes.len() - 1);
        }
        PlanTree::new(nodes, current).expect("right-deep construction is structurally sound")
    }
}

/// A plan tree with per-node output cardinalities.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnotatedPlan {
    /// The underlying plan.
    pub plan: PlanTree,
    /// `out_tuples[n]` = output cardinality of node `n`.
    pub out_tuples: Vec<f64>,
}

impl AnnotatedPlan {
    /// Output cardinality of a node.
    pub fn tuples(&self, id: PlanNodeId) -> f64 {
        self.out_tuples[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::KeyJoinMax;

    fn catalog3() -> (Catalog, Vec<RelationId>) {
        let mut c = Catalog::new();
        let ids = vec![
            c.add_relation("a", 1_000.0),
            c.add_relation("b", 5_000.0),
            c.add_relation("c", 2_000.0),
        ];
        (c, ids)
    }

    #[test]
    fn left_deep_shape() {
        let (_, ids) = catalog3();
        let p = PlanTree::left_deep(&ids);
        assert_eq!(p.join_count(), 2);
        assert_eq!(p.scan_count(), 3);
        assert_eq!(p.height(), 2);
    }

    #[test]
    fn right_deep_shape() {
        let (_, ids) = catalog3();
        let p = PlanTree::right_deep(&ids);
        assert_eq!(p.join_count(), 2);
        assert_eq!(p.scan_count(), 3);
        assert_eq!(p.height(), 2);
        // Root's outer child is a scan in a right-deep plan.
        if let PlanNode::Join { outer, .. } = p.node(p.root()) {
            assert!(matches!(p.node(*outer), PlanNode::Scan(_)));
        } else {
            panic!("root must be a join");
        }
    }

    #[test]
    fn scan_only_plan() {
        let p = PlanTree::scan_only(RelationId(0));
        assert_eq!(p.join_count(), 0);
        assert_eq!(p.height(), 0);
    }

    #[test]
    fn bushy_plan_height() {
        // ((a ⋈ b) ⋈ (c ⋈ d)) — a balanced bushy tree of height 2.
        let nodes = vec![
            PlanNode::Scan(RelationId(0)),
            PlanNode::Scan(RelationId(1)),
            PlanNode::Scan(RelationId(2)),
            PlanNode::Scan(RelationId(3)),
            PlanNode::Join {
                outer: PlanNodeId(0),
                inner: PlanNodeId(1),
            },
            PlanNode::Join {
                outer: PlanNodeId(2),
                inner: PlanNodeId(3),
            },
            PlanNode::Join {
                outer: PlanNodeId(4),
                inner: PlanNodeId(5),
            },
        ];
        let p = PlanTree::new(nodes, PlanNodeId(6)).unwrap();
        assert_eq!(p.height(), 2);
        assert_eq!(p.join_count(), 3);
    }

    #[test]
    fn validation_catches_dangling_child() {
        let nodes = vec![PlanNode::Join {
            outer: PlanNodeId(5),
            inner: PlanNodeId(6),
        }];
        assert!(matches!(
            PlanTree::new(nodes, PlanNodeId(0)),
            Err(PlanError::DanglingChild(_))
        ));
    }

    #[test]
    fn validation_catches_shared_child() {
        let nodes = vec![
            PlanNode::Scan(RelationId(0)),
            PlanNode::Join {
                outer: PlanNodeId(0),
                inner: PlanNodeId(0),
            },
        ];
        assert!(matches!(
            PlanTree::new(nodes, PlanNodeId(1)),
            Err(PlanError::NotATree(_))
        ));
    }

    #[test]
    fn validation_catches_unreachable() {
        let nodes = vec![PlanNode::Scan(RelationId(0)), PlanNode::Scan(RelationId(1))];
        assert!(matches!(
            PlanTree::new(nodes, PlanNodeId(0)),
            Err(PlanError::Unreachable(PlanNodeId(1)))
        ));
    }

    #[test]
    fn validation_catches_bad_root() {
        assert!(matches!(
            PlanTree::new(vec![], PlanNodeId(0)),
            Err(PlanError::BadRoot(_))
        ));
    }

    #[test]
    fn annotate_key_join_max() {
        let (c, ids) = catalog3();
        let p = PlanTree::left_deep(&ids);
        let a = p.annotate(&c, &KeyJoinMax);
        // (a ⋈ b) = max(1000, 5000) = 5000; ((a⋈b) ⋈ c) = max(5000, 2000).
        assert_eq!(a.tuples(p.root()), 5_000.0);
    }

    #[test]
    fn unary_root_stacks_and_annotates() {
        let (c, ids) = catalog3();
        let base = PlanTree::left_deep(&ids);
        let agg = base.with_unary_root(UnaryKind::HashAggregate {
            output_fraction: 0.1,
        });
        assert_eq!(agg.join_count(), 2);
        assert_eq!(agg.unary_count(), 1);
        assert_eq!(agg.height(), base.height() + 1);
        let a = agg.annotate(&c, &KeyJoinMax);
        // (a⋈b⋈c) = 5000 tuples; aggregate keeps 10%.
        assert!((a.tuples(agg.root()) - 500.0).abs() < 1e-9);
        // Sort preserves cardinality.
        let sorted = base.with_unary_root(UnaryKind::Sort);
        let s = sorted.annotate(&c, &KeyJoinMax);
        assert_eq!(s.tuples(sorted.root()), 5_000.0);
    }

    #[test]
    #[should_panic(expected = "output fraction")]
    fn aggregate_fraction_validated() {
        let (_, ids) = catalog3();
        PlanTree::left_deep(&ids).with_unary_root(UnaryKind::HashAggregate {
            output_fraction: 1.5,
        });
    }

    #[test]
    fn deep_left_chain_does_not_overflow() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..500)
            .map(|i| c.add_relation(format!("r{i}"), 100.0 + i as f64))
            .collect();
        let p = PlanTree::left_deep(&ids);
        assert_eq!(p.join_count(), 499);
        assert_eq!(p.height(), 499);
        let a = p.annotate(&c, &KeyJoinMax);
        assert_eq!(a.tuples(p.root()), 599.0);
    }
}
