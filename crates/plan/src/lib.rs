//! # mrs-plan — query plan substrate
//!
//! Plan-level data structures for the SIGMOD'96 multi-dimensional
//! scheduling reproduction: base relations and catalogs, bushy execution
//! plan trees (Figure 1(a)), operator-tree macro-expansion into
//! scan/build/probe nodes with pipeline and blocking edges (Figure 1(b)),
//! and query-task decomposition (Figure 1(c)) feeding
//! [`mrs_core::tree::tree_schedule`].
//!
//! ```
//! use mrs_plan::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! let a = catalog.add_relation("part", 20_000.0);
//! let b = catalog.add_relation("supplier", 1_000.0);
//! let c = catalog.add_relation("order", 80_000.0);
//!
//! let plan = PlanTree::left_deep(&[a, b, c]);
//! let annotated = plan.annotate(&catalog, &KeyJoinMax);
//! let optree = OperatorTree::expand(&annotated);
//! let decomposition = decompose(&optree).unwrap();
//!
//! assert_eq!(optree.joins().len(), 2);
//! assert_eq!(decomposition.tasks.height(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cardinality;
pub mod decompose;
pub mod dot;
pub mod optimizer;
pub mod optree;
pub mod plan;
pub mod relation;

/// One-stop imports.
pub mod prelude {
    pub use crate::cardinality::{CardinalityModel, KeyJoinMax, SelectivityJoin};
    pub use crate::decompose::{decompose, Decomposition};
    pub use crate::dot::{optree_dot, plan_dot, task_dot};
    pub use crate::optimizer::{
        c_out, optimize_dp, optimize_greedy, OptimizeError, DP_RELATION_LIMIT,
    };
    pub use crate::optree::{EdgeKind, OpDetail, OpNode, OperatorTree};
    pub use crate::plan::{AnnotatedPlan, PlanError, PlanNode, PlanNodeId, PlanTree, UnaryKind};
    pub use crate::relation::{Catalog, Relation, RelationId};
}
