//! Operator trees: the "macro-expansion" of an execution plan tree into
//! physical operator nodes (Figure 1(b)).
//!
//! Every hash join expands into a **build** on its inner input and a
//! **probe** on its outer input; base relations expand into **scans**.
//! Edges carry the two timing constraints of Section 3.1:
//!
//! * *pipelining* (thin edges) — producer and consumer run concurrently,
//! * *blocking* (thick edges) — the consumer starts only after the
//!   producer completes. The only blocking edge a hash join introduces is
//!   build → probe: the hash table must be complete before probing begins.

use crate::plan::{AnnotatedPlan, PlanNode, PlanNodeId, UnaryKind};
use crate::relation::RelationId;
use mrs_core::operator::{OperatorId, OperatorKind};

/// The timing constraint an operator-tree edge carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Producer streams into consumer; both execute concurrently.
    Pipeline,
    /// Consumer waits for the producer to complete.
    Blocking,
}

/// Role-specific annotations of a physical operator node.
#[derive(Clone, Debug, PartialEq)]
pub enum OpDetail {
    /// Sequential scan of a base relation.
    Scan {
        /// The scanned relation.
        relation: RelationId,
        /// Tuples produced.
        out_tuples: f64,
    },
    /// Hash-table build over the join's inner input.
    Build {
        /// Tuples consumed (the inner input's cardinality).
        in_tuples: f64,
        /// The probe this build feeds (filled during expansion).
        probe: OperatorId,
    },
    /// Probe of a hash table with the join's outer input.
    Probe {
        /// Tuples arriving on the outer (pipelined) input.
        outer_tuples: f64,
        /// Join output tuples.
        out_tuples: f64,
        /// The build that produced this probe's hash table.
        build: OperatorId,
    },
    /// Hash aggregation (blocking on its input).
    Aggregate {
        /// Tuples consumed.
        in_tuples: f64,
        /// Groups produced.
        out_tuples: f64,
    },
    /// In-memory sort (blocking on its input).
    Sort {
        /// Tuples consumed (and produced).
        in_tuples: f64,
    },
}

/// A node of the operator tree.
#[derive(Clone, Debug, PartialEq)]
pub struct OpNode {
    /// Dense id (also the index into [`OperatorTree::nodes`]).
    pub id: OperatorId,
    /// Physical kind.
    pub kind: OperatorKind,
    /// Role-specific annotations.
    pub detail: OpDetail,
    /// Producer edges feeding this node.
    pub inputs: Vec<(OperatorId, EdgeKind)>,
}

/// The operator tree of a plan: physical operators plus pipeline/blocking
/// edges, with the plan's cardinality annotations attached.
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorTree {
    nodes: Vec<OpNode>,
    root: OperatorId,
}

impl OperatorTree {
    /// Macro-expands an annotated plan into its operator tree.
    pub fn expand(plan: &AnnotatedPlan) -> Self {
        let pnodes = plan.plan.nodes();
        let mut nodes: Vec<OpNode> = Vec::with_capacity(pnodes.len() * 2);
        // out_op[p] = the operator producing plan node p's output.
        let mut out_op: Vec<Option<OperatorId>> = vec![None; pnodes.len()];

        // Iterative post-order over the plan tree.
        let mut stack = vec![plan.plan.root().0];
        while let Some(&p) = stack.last() {
            match &pnodes[p] {
                PlanNode::Scan(r) => {
                    let id = OperatorId(nodes.len());
                    nodes.push(OpNode {
                        id,
                        kind: OperatorKind::Scan,
                        detail: OpDetail::Scan {
                            relation: *r,
                            out_tuples: plan.tuples(PlanNodeId(p)),
                        },
                        inputs: vec![],
                    });
                    out_op[p] = Some(id);
                    stack.pop();
                }
                PlanNode::Unary { kind, input } => match out_op[input.0] {
                    Some(input_op) => {
                        let id = OperatorId(nodes.len());
                        let in_tuples = plan.tuples(*input);
                        let (okind, detail) = match kind {
                            UnaryKind::HashAggregate { .. } => (
                                OperatorKind::Aggregate,
                                OpDetail::Aggregate {
                                    in_tuples,
                                    out_tuples: plan.tuples(PlanNodeId(p)),
                                },
                            ),
                            UnaryKind::Sort => (OperatorKind::Sort, OpDetail::Sort { in_tuples }),
                        };
                        nodes.push(OpNode {
                            id,
                            kind: okind,
                            detail,
                            // Blocking: neither an aggregate's groups nor a
                            // sorted stream can emit before all input lands.
                            inputs: vec![(input_op, EdgeKind::Blocking)],
                        });
                        out_op[p] = Some(id);
                        stack.pop();
                    }
                    None => stack.push(input.0),
                },
                PlanNode::Join { outer, inner } => match (out_op[outer.0], out_op[inner.0]) {
                    (Some(outer_op), Some(inner_op)) => {
                        let build = OperatorId(nodes.len());
                        let probe = OperatorId(nodes.len() + 1);
                        nodes.push(OpNode {
                            id: build,
                            kind: OperatorKind::Build,
                            detail: OpDetail::Build {
                                in_tuples: plan.tuples(*inner),
                                probe,
                            },
                            inputs: vec![(inner_op, EdgeKind::Pipeline)],
                        });
                        nodes.push(OpNode {
                            id: probe,
                            kind: OperatorKind::Probe,
                            detail: OpDetail::Probe {
                                outer_tuples: plan.tuples(*outer),
                                out_tuples: plan.tuples(PlanNodeId(p)),
                                build,
                            },
                            inputs: vec![
                                (build, EdgeKind::Blocking),
                                (outer_op, EdgeKind::Pipeline),
                            ],
                        });
                        out_op[p] = Some(probe);
                        stack.pop();
                    }
                    (o, i) => {
                        if o.is_none() {
                            stack.push(outer.0);
                        }
                        if i.is_none() {
                            stack.push(inner.0);
                        }
                    }
                },
            }
        }

        let root = out_op[plan.plan.root().0].expect("post-order visits the root last");
        OperatorTree { nodes, root }
    }

    /// The operator producing the final query output.
    pub fn root(&self) -> OperatorId {
        self.root
    }

    /// All operator nodes, indexable by `OperatorId.0`.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// Looks a node up.
    pub fn node(&self, id: OperatorId) -> &OpNode {
        &self.nodes[id.0]
    }

    /// Number of physical operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty tree (never produced by [`OperatorTree::expand`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All `(build, probe)` pairs, one per join.
    pub fn joins(&self) -> Vec<(OperatorId, OperatorId)> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.detail {
                OpDetail::Build { probe, .. } => Some((n.id, *probe)),
                _ => None,
            })
            .collect()
    }

    /// Iterator over all blocking edges as `(producer, consumer)`.
    pub fn blocking_edges(&self) -> impl Iterator<Item = (OperatorId, OperatorId)> + '_ {
        self.nodes.iter().flat_map(|n| {
            n.inputs
                .iter()
                .filter(|(_, k)| *k == EdgeKind::Blocking)
                .map(move |(src, _)| (*src, n.id))
        })
    }

    /// Iterator over all pipeline edges as `(producer, consumer)`.
    pub fn pipeline_edges(&self) -> impl Iterator<Item = (OperatorId, OperatorId)> + '_ {
        self.nodes.iter().flat_map(|n| {
            n.inputs
                .iter()
                .filter(|(_, k)| *k == EdgeKind::Pipeline)
                .map(move |(src, _)| (*src, n.id))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::KeyJoinMax;
    use crate::plan::PlanTree;
    use crate::relation::Catalog;

    fn expand_left_deep(n: usize) -> (OperatorTree, Catalog) {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..n)
            .map(|i| c.add_relation(format!("r{i}"), 1_000.0 * (i + 1) as f64))
            .collect();
        let p = PlanTree::left_deep(&ids);
        let a = p.annotate(&c, &KeyJoinMax);
        (OperatorTree::expand(&a), c)
    }

    #[test]
    fn single_scan_plan_expands_to_one_node() {
        let mut c = Catalog::new();
        let r = c.add_relation("solo", 500.0);
        let p = PlanTree::scan_only(r);
        let a = p.annotate(&c, &KeyJoinMax);
        let t = OperatorTree::expand(&a);
        assert_eq!(t.len(), 1);
        assert_eq!(t.node(t.root()).kind, OperatorKind::Scan);
        assert!(!t.is_empty());
    }

    #[test]
    fn one_join_expands_to_four_operators() {
        let (t, _) = expand_left_deep(2);
        // 2 scans + build + probe.
        assert_eq!(t.len(), 4);
        let kinds: Vec<_> = t.nodes().iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == OperatorKind::Scan).count(),
            2
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == OperatorKind::Build).count(),
            1
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == OperatorKind::Probe).count(),
            1
        );
    }

    #[test]
    fn join_count_scales_linearly() {
        let (t, _) = expand_left_deep(5);
        // J joins → J builds + J probes + (J+1) scans = 3J + 1 operators.
        assert_eq!(t.len(), 3 * 4 + 1);
        assert_eq!(t.joins().len(), 4);
    }

    #[test]
    fn build_blocks_probe() {
        let (t, _) = expand_left_deep(2);
        let blocking: Vec<_> = t.blocking_edges().collect();
        assert_eq!(blocking.len(), 1);
        let (src, dst) = blocking[0];
        assert_eq!(t.node(src).kind, OperatorKind::Build);
        assert_eq!(t.node(dst).kind, OperatorKind::Probe);
        // Cross-references agree.
        match (&t.node(src).detail, &t.node(dst).detail) {
            (OpDetail::Build { probe, .. }, OpDetail::Probe { build, .. }) => {
                assert_eq!(*probe, dst);
                assert_eq!(*build, src);
            }
            _ => panic!("wrong details"),
        }
    }

    #[test]
    fn probe_cardinalities_follow_key_join() {
        let (t, _) = expand_left_deep(3);
        // r0=1000, r1=2000, r2=3000. First join out = 2000, second = 3000.
        let probes: Vec<_> = t
            .nodes()
            .iter()
            .filter_map(|n| match &n.detail {
                OpDetail::Probe {
                    outer_tuples,
                    out_tuples,
                    ..
                } => Some((*outer_tuples, *out_tuples)),
                _ => None,
            })
            .collect();
        assert_eq!(probes.len(), 2);
        assert!(probes.contains(&(1_000.0, 2_000.0)));
        assert!(probes.contains(&(2_000.0, 3_000.0)));
    }

    #[test]
    fn pipeline_edge_count() {
        // For a left-deep J-join plan: each join has inner-scan→build and
        // outer→probe pipelines: 2J pipeline edges.
        let (t, _) = expand_left_deep(4);
        assert_eq!(t.pipeline_edges().count(), 6);
    }

    #[test]
    fn root_is_top_probe() {
        let (t, _) = expand_left_deep(3);
        assert_eq!(t.node(t.root()).kind, OperatorKind::Probe);
        match &t.node(t.root()).detail {
            OpDetail::Probe { out_tuples, .. } => assert_eq!(*out_tuples, 3_000.0),
            _ => panic!(),
        }
    }

    #[test]
    fn ids_are_dense() {
        let (t, _) = expand_left_deep(6);
        for (i, n) in t.nodes().iter().enumerate() {
            assert_eq!(n.id, OperatorId(i));
        }
    }

    #[test]
    fn aggregate_expands_blocking() {
        use crate::plan::UnaryKind;
        let mut c = Catalog::new();
        let a = c.add_relation("a", 2_000.0);
        let b = c.add_relation("b", 4_000.0);
        let plan = PlanTree::left_deep(&[a, b]).with_unary_root(UnaryKind::HashAggregate {
            output_fraction: 0.25,
        });
        let t = OperatorTree::expand(&plan.annotate(&c, &KeyJoinMax));
        // 2 scans + build + probe + aggregate.
        assert_eq!(t.len(), 5);
        assert_eq!(t.node(t.root()).kind, OperatorKind::Aggregate);
        match &t.node(t.root()).detail {
            OpDetail::Aggregate {
                in_tuples,
                out_tuples,
            } => {
                assert_eq!(*in_tuples, 4_000.0);
                assert_eq!(*out_tuples, 1_000.0);
            }
            other => panic!("wrong detail {other:?}"),
        }
        // The aggregate's only input edge is blocking (from the probe).
        assert_eq!(t.node(t.root()).inputs.len(), 1);
        assert_eq!(t.node(t.root()).inputs[0].1, EdgeKind::Blocking);
        // Two blocking edges total now: build->probe and probe->agg.
        assert_eq!(t.blocking_edges().count(), 2);
    }

    #[test]
    fn sort_expands_blocking() {
        use crate::plan::UnaryKind;
        let mut c = Catalog::new();
        let a = c.add_relation("a", 1_000.0);
        let plan = PlanTree::scan_only(a).with_unary_root(UnaryKind::Sort);
        let t = OperatorTree::expand(&plan.annotate(&c, &KeyJoinMax));
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(t.root()).kind, OperatorKind::Sort);
        assert_eq!(t.blocking_edges().count(), 1);
    }

    #[test]
    fn bushy_plan_expansion() {
        use crate::plan::{PlanNode, PlanNodeId};
        let mut c = Catalog::new();
        let r: Vec<_> = (0..4)
            .map(|i| c.add_relation(format!("r{i}"), 1_000.0))
            .collect();
        let nodes = vec![
            PlanNode::Scan(r[0]),
            PlanNode::Scan(r[1]),
            PlanNode::Scan(r[2]),
            PlanNode::Scan(r[3]),
            PlanNode::Join {
                outer: PlanNodeId(0),
                inner: PlanNodeId(1),
            },
            PlanNode::Join {
                outer: PlanNodeId(2),
                inner: PlanNodeId(3),
            },
            PlanNode::Join {
                outer: PlanNodeId(4),
                inner: PlanNodeId(5),
            },
        ];
        let p = PlanTree::new(nodes, PlanNodeId(6)).unwrap();
        let t = OperatorTree::expand(&p.annotate(&c, &KeyJoinMax));
        assert_eq!(t.len(), 10); // 4 scans + 3 builds + 3 probes
        assert_eq!(t.blocking_edges().count(), 3);
    }
}
