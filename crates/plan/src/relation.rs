//! Base relations and the system catalog.

use std::fmt;

/// Identifier of a base relation in a [`Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub usize);

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A base relation: name plus the statistics the cost model needs.
#[derive(Clone, Debug, PartialEq)]
pub struct Relation {
    /// Human-readable name.
    pub name: String,
    /// Cardinality in tuples (`‖R‖`).
    pub tuples: f64,
}

impl Relation {
    /// Creates a relation.
    ///
    /// # Panics
    /// Panics on a non-finite or negative cardinality.
    pub fn new(name: impl Into<String>, tuples: f64) -> Self {
        assert!(
            tuples.is_finite() && tuples >= 0.0,
            "relation cardinality must be finite and non-negative, got {tuples}"
        );
        Relation {
            name: name.into(),
            tuples,
        }
    }
}

/// The catalog: the set of base relations a query may reference.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Catalog {
    relations: Vec<Relation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a relation and returns its id.
    pub fn add(&mut self, relation: Relation) -> RelationId {
        self.relations.push(relation);
        RelationId(self.relations.len() - 1)
    }

    /// Convenience: add a relation by name and cardinality.
    pub fn add_relation(&mut self, name: impl Into<String>, tuples: f64) -> RelationId {
        self.add(Relation::new(name, tuples))
    }

    /// Looks a relation up.
    ///
    /// # Panics
    /// Panics on an unknown id — ids are only minted by this catalog, so
    /// a miss is a programming error.
    pub fn get(&self, id: RelationId) -> &Relation {
        &self.relations[id.0]
    }

    /// Checked lookup.
    pub fn try_get(&self, id: RelationId) -> Option<&Relation> {
        self.relations.get(id.0)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates `(id, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelationId(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Catalog::new();
        let a = c.add_relation("orders", 10_000.0);
        let b = c.add_relation("lineitem", 60_000.0);
        assert_eq!(a, RelationId(0));
        assert_eq!(b, RelationId(1));
        assert_eq!(c.get(a).name, "orders");
        assert_eq!(c.get(b).tuples, 60_000.0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn try_get_misses_gracefully() {
        let c = Catalog::new();
        assert!(c.try_get(RelationId(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let mut c = Catalog::new();
        c.add_relation("a", 1.0);
        c.add_relation("b", 2.0);
        let ids: Vec<_> = c.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![RelationId(0), RelationId(1)]);
    }

    #[test]
    #[should_panic(expected = "cardinality")]
    fn negative_cardinality_rejected() {
        Relation::new("bad", -5.0);
    }

    #[test]
    fn display() {
        assert_eq!(RelationId(3).to_string(), "R3");
    }
}
