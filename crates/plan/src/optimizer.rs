//! Join-order optimization: the "earlier phase of conventional
//! centralized query optimization" the paper assumes produced its input
//! plans (Section 1).
//!
//! Given a tree query graph (join predicates over base relations), two
//! optimizers build a bushy [`PlanTree`]:
//!
//! * [`optimize_dp`] — exact Selinger-style dynamic programming over
//!   connected subgraphs (DPsub), minimizing the cumulative intermediate
//!   result cardinality (`C_out`). Exponential; limited to graphs of at
//!   most [`DP_RELATION_LIMIT`] relations.
//! * [`optimize_greedy`] — greedy minimum-result contraction: repeatedly
//!   join the two connected components whose join yields the smallest
//!   result. Near-linear; handles the paper's 50-join queries easily.
//!
//! Both orient each join with the smaller input on the inner (build)
//! side, the standard hash-join heuristic.

use crate::cardinality::CardinalityModel;
use crate::plan::{PlanNode, PlanNodeId, PlanTree};
use crate::relation::{Catalog, RelationId};
use std::collections::HashMap;

/// Maximum relation count accepted by [`optimize_dp`].
pub const DP_RELATION_LIMIT: usize = 16;

/// Errors raised by the optimizers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeError {
    /// The edge list does not connect all the relations it mentions.
    Disconnected,
    /// No relations were supplied.
    Empty,
    /// [`optimize_dp`] was asked for more relations than it can handle.
    TooLarge {
        /// Relations in the query.
        relations: usize,
    },
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Disconnected => write!(f, "query graph is not connected"),
            OptimizeError::Empty => write!(f, "query references no relations"),
            OptimizeError::TooLarge { relations } => write!(
                f,
                "{relations} relations exceed the DP optimizer limit of {DP_RELATION_LIMIT}"
            ),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Distinct relations mentioned by `edges`, in first-appearance order.
fn relations_of(edges: &[(RelationId, RelationId)]) -> Vec<RelationId> {
    let mut seen = Vec::new();
    for (a, b) in edges {
        if !seen.contains(a) {
            seen.push(*a);
        }
        if !seen.contains(b) {
            seen.push(*b);
        }
    }
    seen
}

/// Greedy minimum-result-size contraction over the query graph.
///
/// At every step, among all remaining query-graph edges, join the two
/// components whose estimated join output is smallest (ties: smaller
/// combined input, then edge order). The larger input becomes the outer
/// (probe) side.
///
/// # Errors
/// [`OptimizeError::Empty`] for an empty edge list with no relations, and
/// [`OptimizeError::Disconnected`] when the edges leave several
/// components.
pub fn optimize_greedy(
    catalog: &Catalog,
    edges: &[(RelationId, RelationId)],
    model: &impl CardinalityModel,
) -> Result<PlanTree, OptimizeError> {
    let rels = relations_of(edges);
    if rels.is_empty() {
        return Err(OptimizeError::Empty);
    }
    // Component id per relation; each component carries its current plan
    // node and cardinality.
    let mut comp_of: HashMap<RelationId, usize> = HashMap::new();
    let mut nodes: Vec<PlanNode> = Vec::new();
    let mut comp_node: Vec<PlanNodeId> = Vec::new();
    let mut comp_card: Vec<f64> = Vec::new();
    for (i, r) in rels.iter().enumerate() {
        comp_of.insert(*r, i);
        nodes.push(PlanNode::Scan(*r));
        comp_node.push(PlanNodeId(i));
        comp_card.push(catalog.get(*r).tuples);
    }

    let mut remaining: Vec<(RelationId, RelationId)> = edges.to_vec();
    let mut root = comp_node[0];
    while !remaining.is_empty() {
        // Pick the cheapest joinable edge.
        let mut best: Option<(usize, f64, f64)> = None; // (edge idx, out, in-sum)
        for (e, (a, b)) in remaining.iter().enumerate() {
            let (ca, cb) = (comp_of[a], comp_of[b]);
            if ca == cb {
                continue; // already merged through another predicate
            }
            let out = model.join_output(comp_card[ca], comp_card[cb]);
            let in_sum = comp_card[ca] + comp_card[cb];
            let better = match best {
                None => true,
                Some((_, bo, bi)) => out < bo || (out == bo && in_sum < bi),
            };
            if better {
                best = Some((e, out, in_sum));
            }
        }
        let Some((e, out, _)) = best else {
            // All remaining edges are internal to one component.
            remaining.retain(|(a, b)| comp_of[a] != comp_of[b]);
            if remaining.is_empty() {
                break;
            }
            return Err(OptimizeError::Disconnected);
        };
        let (a, b) = remaining.swap_remove(e);
        let (ca, cb) = (comp_of[&a], comp_of[&b]);
        // Smaller side builds (inner); larger probes (outer).
        let (outer_c, inner_c) = if comp_card[ca] >= comp_card[cb] {
            (ca, cb)
        } else {
            (cb, ca)
        };
        nodes.push(PlanNode::Join {
            outer: comp_node[outer_c],
            inner: comp_node[inner_c],
        });
        let join = PlanNodeId(nodes.len() - 1);
        // Merge component cb into ca (relabel all members of cb).
        for c in comp_of.values_mut() {
            if *c == cb {
                *c = ca;
            }
        }
        comp_node[ca] = join;
        comp_card[ca] = out;
        root = join;
    }

    // Connectivity: all relations must share one component.
    let first = comp_of[&rels[0]];
    if rels.iter().any(|r| comp_of[r] != first) {
        return Err(OptimizeError::Disconnected);
    }
    PlanTree::new(nodes, root).map_err(|_| OptimizeError::Disconnected)
}

/// Exact DP over connected subgraphs minimizing cumulative intermediate
/// cardinality (`C_out`). Produces an optimal *bushy* plan for tree (or
/// general) query graphs of at most [`DP_RELATION_LIMIT`] relations.
///
/// # Errors
/// [`OptimizeError::TooLarge`] beyond the limit; [`OptimizeError::Empty`]
/// / [`OptimizeError::Disconnected`] for malformed inputs.
pub fn optimize_dp(
    catalog: &Catalog,
    edges: &[(RelationId, RelationId)],
    model: &impl CardinalityModel,
) -> Result<PlanTree, OptimizeError> {
    let rels = relations_of(edges);
    let n = rels.len();
    if n == 0 {
        return Err(OptimizeError::Empty);
    }
    if n > DP_RELATION_LIMIT {
        return Err(OptimizeError::TooLarge { relations: n });
    }
    let index_of: HashMap<RelationId, usize> =
        rels.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    // adjacency[i] = bitmask of neighbours.
    let mut adjacency = vec![0u32; n];
    for (a, b) in edges {
        let (ia, ib) = (index_of[a], index_of[b]);
        adjacency[ia] |= 1 << ib;
        adjacency[ib] |= 1 << ia;
    }

    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let connected = |mask: u32| -> bool {
        // BFS from the lowest set bit.
        let start = mask.trailing_zeros();
        let mut seen = 1u32 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut next = 0u32;
            let mut f = frontier;
            while f != 0 {
                let i = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= adjacency[i] & mask & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen == mask
    };
    if !connected(full) {
        return Err(OptimizeError::Disconnected);
    }

    // cost[mask] = (cumulative C_out, output cardinality, split) with
    // split = the outer-side submask (0 for single relations).
    let mut cost: Vec<Option<(f64, f64, u32)>> = vec![None; (full as usize) + 1];
    for (i, r) in rels.iter().enumerate() {
        cost[1usize << i] = Some((0.0, catalog.get(*r).tuples, 0));
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 || !connected(mask) {
            continue;
        }
        // Enumerate proper submasks.
        let mut sub = (mask - 1) & mask;
        let mut best: Option<(f64, f64, u32)> = None;
        while sub != 0 {
            let other = mask & !sub;
            // Consider each unordered split once; require both connected
            // and joined by at least one edge.
            if sub > other {
                sub = (sub - 1) & mask;
                continue;
            }
            if let (Some((c1, card1, _)), Some((c2, card2, _))) =
                (cost[sub as usize], cost[other as usize])
            {
                // Edge between the two halves?
                let mut touches = false;
                let mut s = sub;
                while s != 0 {
                    let i = s.trailing_zeros() as usize;
                    s &= s - 1;
                    if adjacency[i] & other != 0 {
                        touches = true;
                        break;
                    }
                }
                if touches {
                    let out = model.join_output(card1, card2);
                    let total = c1 + c2 + out;
                    let better = best.is_none_or(|(bc, _, _)| total < bc);
                    if better {
                        // Outer = larger side (probe), inner = smaller.
                        let outer_mask = if card1 >= card2 { sub } else { other };
                        best = Some((total, out, outer_mask));
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        cost[mask as usize] = best;
    }

    // Reconstruct the plan bottom-up.
    let mut nodes: Vec<PlanNode> = Vec::new();
    fn build(
        mask: u32,
        cost: &[Option<(f64, f64, u32)>],
        rels: &[RelationId],
        nodes: &mut Vec<PlanNode>,
    ) -> PlanNodeId {
        let (_, _, split) = cost[mask as usize].expect("connected masks are solved");
        if split == 0 {
            let i = mask.trailing_zeros() as usize;
            nodes.push(PlanNode::Scan(rels[i]));
            return PlanNodeId(nodes.len() - 1);
        }
        let outer_mask = split;
        let inner_mask = mask & !split;
        let outer = build(outer_mask, cost, rels, nodes);
        let inner = build(inner_mask, cost, rels, nodes);
        nodes.push(PlanNode::Join { outer, inner });
        PlanNodeId(nodes.len() - 1)
    }
    let root = build(full, &cost, &rels, &mut nodes);
    PlanTree::new(nodes, root).map_err(|_| OptimizeError::Disconnected)
}

/// The optimizer's objective on a finished plan: cumulative intermediate
/// result cardinality (`C_out` — every join's output counted once).
pub fn c_out(plan: &PlanTree, catalog: &Catalog, model: &impl CardinalityModel) -> f64 {
    let annotated = plan.annotate(catalog, model);
    plan.nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n, PlanNode::Join { .. }))
        .map(|(i, _)| annotated.out_tuples[i])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::{KeyJoinMax, SelectivityJoin};

    fn chain_graph(sizes: &[f64]) -> (Catalog, Vec<(RelationId, RelationId)>) {
        let mut c = Catalog::new();
        let ids: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| c.add_relation(format!("r{i}"), s))
            .collect();
        let edges = ids.windows(2).map(|w| (w[0], w[1])).collect();
        (c, edges)
    }

    #[test]
    fn greedy_builds_valid_plan() {
        let (c, edges) = chain_graph(&[1_000.0, 50_000.0, 2_000.0, 80_000.0]);
        let plan = optimize_greedy(&c, &edges, &KeyJoinMax).unwrap();
        assert_eq!(plan.join_count(), 3);
        assert_eq!(plan.scan_count(), 4);
    }

    #[test]
    fn dp_builds_valid_plan() {
        let (c, edges) = chain_graph(&[1_000.0, 50_000.0, 2_000.0, 80_000.0]);
        let plan = optimize_dp(&c, &edges, &KeyJoinMax).unwrap();
        assert_eq!(plan.join_count(), 3);
        assert_eq!(plan.scan_count(), 4);
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        for seed in 0..8u64 {
            // Pseudo-random star/chain mixes via a tiny LCG.
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 99_000 + 1_000) as f64
            };
            let sizes: Vec<f64> = (0..7).map(|_| next()).collect();
            let (c, edges) = chain_graph(&sizes);
            let m = SelectivityJoin::new(0.001).unwrap();
            let dp = optimize_dp(&c, &edges, &m).unwrap();
            let greedy = optimize_greedy(&c, &edges, &m).unwrap();
            let (cd, cg) = (c_out(&dp, &c, &m), c_out(&greedy, &c, &m));
            assert!(
                cd <= cg * (1.0 + 1e-9),
                "seed {seed}: DP C_out {cd} worse than greedy {cg}"
            );
        }
    }

    #[test]
    fn dp_finds_known_optimum_on_selective_star() {
        // Star: fact joins three dimensions; with σ = 1e-6 the optimal
        // order joins the most selective (smallest) dimensions first.
        let mut c = Catalog::new();
        let fact = c.add_relation("fact", 100_000.0);
        let d1 = c.add_relation("d1", 10.0);
        let d2 = c.add_relation("d2", 100.0);
        let d3 = c.add_relation("d3", 1_000.0);
        let edges = vec![(fact, d1), (fact, d2), (fact, d3)];
        let m = SelectivityJoin::new(1e-6).unwrap();
        let plan = optimize_dp(&c, &edges, &m).unwrap();
        // Expected: ((fact ⋈ d1) ⋈ d2) ⋈ d3 — verify by objective value.
        let expected = {
            let j1 = 1e-6 * 100_000.0 * 10.0; // 1
            let j2 = 1e-6 * j1 * 100.0; // 1e-4
            let j3 = 1e-6 * j2 * 1_000.0; // 1e-7
            j1 + j2 + j3
        };
        assert!((c_out(&plan, &c, &m) - expected).abs() < 1e-9);
    }

    #[test]
    fn greedy_handles_fifty_joins() {
        let sizes: Vec<f64> = (0..51).map(|i| 1_000.0 + (i as f64) * 1_500.0).collect();
        let (c, edges) = chain_graph(&sizes);
        let plan = optimize_greedy(&c, &edges, &KeyJoinMax).unwrap();
        assert_eq!(plan.join_count(), 50);
    }

    #[test]
    fn dp_rejects_oversized_graphs() {
        let sizes: Vec<f64> = vec![1_000.0; DP_RELATION_LIMIT + 2];
        let (c, edges) = chain_graph(&sizes);
        assert!(matches!(
            optimize_dp(&c, &edges, &KeyJoinMax),
            Err(OptimizeError::TooLarge { .. })
        ));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut c = Catalog::new();
        let a = c.add_relation("a", 1_000.0);
        let b = c.add_relation("b", 1_000.0);
        let x = c.add_relation("x", 1_000.0);
        let y = c.add_relation("y", 1_000.0);
        let edges = vec![(a, b), (x, y)]; // two islands
        assert_eq!(
            optimize_greedy(&c, &edges, &KeyJoinMax),
            Err(OptimizeError::Disconnected)
        );
        assert_eq!(
            optimize_dp(&c, &edges, &KeyJoinMax),
            Err(OptimizeError::Disconnected)
        );
    }

    #[test]
    fn empty_input_rejected() {
        let c = Catalog::new();
        assert_eq!(
            optimize_greedy(&c, &[], &KeyJoinMax),
            Err(OptimizeError::Empty)
        );
        assert_eq!(optimize_dp(&c, &[], &KeyJoinMax), Err(OptimizeError::Empty));
    }

    #[test]
    fn build_side_is_smaller_input() {
        let mut c = Catalog::new();
        let big = c.add_relation("big", 90_000.0);
        let small = c.add_relation("small", 1_000.0);
        let plan = optimize_greedy(&c, &[(big, small)], &KeyJoinMax).unwrap();
        if let PlanNode::Join { outer, inner } = plan.node(plan.root()) {
            assert_eq!(plan.node(*outer), &PlanNode::Scan(big));
            assert_eq!(plan.node(*inner), &PlanNode::Scan(small));
        } else {
            panic!("root must be a join");
        }
    }

    #[test]
    fn works_on_generated_tree_graphs() {
        // Round-trip with the workload generator's edge lists.
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..12)
            .map(|i| c.add_relation(format!("r{i}"), 1_000.0 * (1 + i % 7) as f64))
            .collect();
        // Random-recursive-tree shape.
        let edges: Vec<_> = (1..12).map(|i| (ids[i / 2], ids[i])).collect();
        let dp = optimize_dp(&c, &edges, &KeyJoinMax).unwrap();
        let greedy = optimize_greedy(&c, &edges, &KeyJoinMax).unwrap();
        assert_eq!(dp.join_count(), 11);
        assert_eq!(greedy.join_count(), 11);
        assert!(c_out(&dp, &c, &KeyJoinMax) <= c_out(&greedy, &c, &KeyJoinMax) + 1e-9);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use crate::cardinality::{KeyJoinMax, SelectivityJoin};
    use proptest::prelude::*;

    fn arb_tree_graph() -> impl Strategy<Value = (Vec<f64>, Vec<usize>)> {
        // sizes + random-recursive-tree parent choices (parent[i] < i).
        (2usize..10).prop_flat_map(|n| {
            (
                proptest::collection::vec(1e3f64..1e5, n),
                proptest::collection::vec(0usize..1_000_000, n - 1),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Both optimizers always emit structurally valid plans covering
        /// every relation exactly once, and DP's objective never exceeds
        /// greedy's.
        #[test]
        fn optimizers_sound_and_ordered(
            (sizes, parents) in arb_tree_graph(),
            selective in proptest::bool::ANY,
        ) {
            let mut catalog = Catalog::new();
            let ids: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &t)| catalog.add_relation(format!("r{i}"), t))
                .collect();
            let edges: Vec<_> = parents
                .iter()
                .enumerate()
                .map(|(i, &p)| (ids[p % (i + 1)], ids[i + 1]))
                .collect();
            let run = |m: &dyn CardinalityModel| {
                let dp = optimize_dp(&catalog, &edges, &m).unwrap();
                let greedy = optimize_greedy(&catalog, &edges, &m).unwrap();
                prop_assert_eq!(dp.join_count(), edges.len());
                prop_assert_eq!(greedy.join_count(), edges.len());
                prop_assert_eq!(dp.scan_count(), sizes.len());
                let (cd, cg) = (c_out(&dp, &catalog, &m), c_out(&greedy, &catalog, &m));
                prop_assert!(cd <= cg * (1.0 + 1e-9), "DP {cd} worse than greedy {cg}");
                Ok(())
            };
            if selective {
                run(&SelectivityJoin::new(1e-4).unwrap())?;
            } else {
                run(&KeyJoinMax)?;
            }
        }
    }
}
