//! Query-task decomposition: from an operator tree to the query task tree
//! (Figure 1(c)) consumed by TREESCHEDULE.
//!
//! A *query task* is a maximal subgraph of the operator tree containing
//! only pipelining edges (Section 3.1). Tasks are the connected components
//! of the pipeline subgraph; every blocking edge (build → probe) connects
//! the build's task to the probe's task, making the probe's task the
//! parent. The probe itself must later run at the build's home — that
//! data-placement constraint is emitted as a
//! [`HomeBinding`].

use crate::optree::{EdgeKind, OpDetail, OperatorTree};
use mrs_core::error::ScheduleError;
use mrs_core::operator::OperatorId;
use mrs_core::tasks::{HomeBinding, TaskGraph, TaskId, TaskNode};

/// The result of decomposing an operator tree.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The query task graph (pipelines + blocking edges).
    pub tasks: TaskGraph,
    /// Probe ← build placement constraints, one per join.
    pub bindings: Vec<HomeBinding>,
    /// `task_of[op.0]` = the task holding each operator.
    pub task_of: Vec<TaskId>,
}

/// Minimal union-find over dense operator indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, keeping task numbering
            // stable across runs.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Decomposes `tree` into its query task graph.
///
/// # Errors
/// [`ScheduleError::MalformedTaskGraph`] if the blocking edges do not form
/// a forest over the pipeline components (cannot happen for trees produced
/// by [`OperatorTree::expand`], but hand-built trees are checked).
pub fn decompose(tree: &OperatorTree) -> Result<Decomposition, ScheduleError> {
    let n = tree.len();
    let mut uf = UnionFind::new(n);
    for (src, dst) in tree.pipeline_edges() {
        uf.union(src.0, dst.0);
    }

    // Dense task ids in order of first appearance (by operator id).
    let mut task_index: Vec<Option<usize>> = vec![None; n];
    let mut roots: Vec<usize> = Vec::new();
    let mut task_of_raw = vec![0usize; n];
    for (op, slot) in task_of_raw.iter_mut().enumerate() {
        let root = uf.find(op);
        let t = match task_index[root] {
            Some(t) => t,
            None => {
                let t = roots.len();
                task_index[root] = Some(t);
                roots.push(root);
                t
            }
        };
        *slot = t;
    }

    let task_count = roots.len();
    let mut ops_per_task: Vec<Vec<OperatorId>> = vec![Vec::new(); task_count];
    for op in 0..n {
        ops_per_task[task_of_raw[op]].push(OperatorId(op));
    }

    // Blocking edges define parents.
    let mut parent: Vec<Option<TaskId>> = vec![None; task_count];
    for (src, dst) in tree.blocking_edges() {
        let (ts, td) = (task_of_raw[src.0], task_of_raw[dst.0]);
        if ts == td {
            return Err(ScheduleError::MalformedTaskGraph {
                detail: format!("blocking edge {src} -> {dst} lies inside one pipeline component"),
            });
        }
        match parent[ts] {
            None => parent[ts] = Some(TaskId(td)),
            Some(existing) if existing == TaskId(td) => {}
            Some(existing) => {
                return Err(ScheduleError::MalformedTaskGraph {
                    detail: format!(
                        "task of {src} blocks both {existing} and T{td}; tasks must form a tree"
                    ),
                });
            }
        }
    }

    let nodes = ops_per_task
        .into_iter()
        .zip(parent)
        .map(|(ops, parent)| TaskNode { ops, parent })
        .collect();
    let tasks = TaskGraph::new(nodes)?;

    let bindings = tree
        .nodes()
        .iter()
        .filter_map(|node| match &node.detail {
            OpDetail::Probe { build, .. } => Some(HomeBinding {
                dependent: node.id,
                source: *build,
            }),
            _ => None,
        })
        .collect();

    let task_of = task_of_raw.into_iter().map(TaskId).collect();
    Ok(Decomposition {
        tasks,
        bindings,
        task_of,
    })
}

/// Counts the edges of each kind — a cheap structural fingerprint used in
/// tests and reports.
pub fn edge_census(tree: &OperatorTree) -> (usize, usize) {
    (
        tree.pipeline_edges().count(),
        tree.nodes()
            .iter()
            .flat_map(|n| n.inputs.iter())
            .filter(|(_, k)| *k == EdgeKind::Blocking)
            .count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::KeyJoinMax;
    use crate::optree::OperatorTree;
    use crate::plan::PlanTree;
    use crate::relation::Catalog;
    use mrs_core::operator::OperatorKind;

    fn left_deep_tree(n: usize) -> OperatorTree {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..n)
            .map(|i| c.add_relation(format!("r{i}"), 1_000.0 * (i + 1) as f64))
            .collect();
        let p = PlanTree::left_deep(&ids);
        OperatorTree::expand(&p.annotate(&c, &KeyJoinMax))
    }

    fn right_deep_tree(n: usize) -> OperatorTree {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..n)
            .map(|i| c.add_relation(format!("r{i}"), 1_000.0 * (i + 1) as f64))
            .collect();
        let p = PlanTree::right_deep(&ids);
        OperatorTree::expand(&p.annotate(&c, &KeyJoinMax))
    }

    #[test]
    fn single_scan_is_one_task() {
        let mut c = Catalog::new();
        let r = c.add_relation("solo", 100.0);
        let p = PlanTree::scan_only(r);
        let t = OperatorTree::expand(&p.annotate(&c, &KeyJoinMax));
        let d = decompose(&t).unwrap();
        assert_eq!(d.tasks.len(), 1);
        assert!(d.bindings.is_empty());
    }

    #[test]
    fn one_join_gives_two_tasks() {
        let t = left_deep_tree(2);
        let d = decompose(&t).unwrap();
        // {scan_inner, build} and {scan_outer, probe}.
        assert_eq!(d.tasks.len(), 2);
        assert_eq!(d.tasks.height(), 1);
        assert_eq!(d.bindings.len(), 1);
        // The probe's task is the parent of the build's task.
        let probe = d.bindings[0].dependent;
        let build = d.bindings[0].source;
        let build_task = d.task_of[build.0];
        let probe_task = d.task_of[probe.0];
        assert_eq!(d.tasks.nodes()[build_task.0].parent, Some(probe_task));
        assert_eq!(d.tasks.nodes()[probe_task.0].parent, None);
    }

    #[test]
    fn left_deep_chain_probes_share_one_task() {
        // In a left-deep plan all probes pipeline into each other: J build
        // tasks + 1 probe task.
        let j = 5;
        let t = left_deep_tree(j + 1);
        let d = decompose(&t).unwrap();
        assert_eq!(d.tasks.len(), j + 1);
        assert_eq!(d.tasks.height(), 1, "all builds are direct children");
        // The root task contains all probes plus the outer scan.
        let root_task = d
            .tasks
            .nodes()
            .iter()
            .position(|n| n.parent.is_none())
            .unwrap();
        let probes_in_root = d.tasks.nodes()[root_task]
            .ops
            .iter()
            .filter(|op| t.node(**op).kind == OperatorKind::Probe)
            .count();
        assert_eq!(probes_in_root, j);
    }

    #[test]
    fn right_deep_chain_nests_build_tasks() {
        // With the join result on the *inner* (build) side, every build
        // waits for the probe below it: tasks form a chain of depth J.
        let t = right_deep_tree(6);
        let d = decompose(&t).unwrap();
        assert_eq!(d.tasks.len(), 6);
        assert_eq!(d.tasks.height(), 5);
    }

    #[test]
    fn bushy_plan_nests_tasks() {
        use crate::plan::{PlanNode, PlanNodeId};
        // ((r0 ⋈ r1) ⋈ (r2 ⋈ r3)): the inner join's probe pipelines into
        // the top build (it's the inner side), so its task is a child of
        // the top task at depth 1, and the build tasks of the two lower
        // joins sit at depth 2.
        let mut c = Catalog::new();
        let r: Vec<_> = (0..4)
            .map(|i| c.add_relation(format!("r{i}"), 1_000.0))
            .collect();
        let nodes = vec![
            PlanNode::Scan(r[0]),
            PlanNode::Scan(r[1]),
            PlanNode::Scan(r[2]),
            PlanNode::Scan(r[3]),
            PlanNode::Join {
                outer: PlanNodeId(0),
                inner: PlanNodeId(1),
            },
            PlanNode::Join {
                outer: PlanNodeId(2),
                inner: PlanNodeId(3),
            },
            PlanNode::Join {
                outer: PlanNodeId(4),
                inner: PlanNodeId(5),
            },
        ];
        let p = PlanTree::new(nodes, PlanNodeId(6)).unwrap();
        let t = OperatorTree::expand(&p.annotate(&c, &KeyJoinMax));
        let d = decompose(&t).unwrap();
        assert_eq!(d.tasks.height(), 2);
        assert_eq!(d.bindings.len(), 3);
    }

    #[test]
    fn every_operator_lands_in_exactly_one_task() {
        let t = left_deep_tree(7);
        let d = decompose(&t).unwrap();
        let mut counted = 0usize;
        for node in d.tasks.nodes() {
            counted += node.ops.len();
        }
        assert_eq!(counted, t.len());
        assert_eq!(d.task_of.len(), t.len());
        // task_of agrees with the node lists.
        for (op_idx, task) in d.task_of.iter().enumerate() {
            assert!(d.tasks.nodes()[task.0].ops.contains(&OperatorId(op_idx)));
        }
    }

    #[test]
    fn bindings_cover_every_join() {
        let t = left_deep_tree(9);
        let d = decompose(&t).unwrap();
        assert_eq!(d.bindings.len(), t.joins().len());
        for b in &d.bindings {
            assert_eq!(t.node(b.dependent).kind, OperatorKind::Probe);
            assert_eq!(t.node(b.source).kind, OperatorKind::Build);
        }
    }

    #[test]
    fn edge_census_matches_structure() {
        let t = left_deep_tree(4);
        let (pipe, block) = edge_census(&t);
        assert_eq!(pipe, 6); // 2 per join
        assert_eq!(block, 3); // 1 per join
    }

    #[test]
    fn decomposition_is_deterministic() {
        let t = left_deep_tree(6);
        let a = decompose(&t).unwrap();
        let b = decompose(&t).unwrap();
        assert_eq!(a.tasks.nodes(), b.tasks.nodes());
        assert_eq!(a.bindings, b.bindings);
    }
}
