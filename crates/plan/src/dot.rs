//! Graphviz DOT exports of plan, operator, and task trees — handy when
//! eyeballing generated workloads (Figure 1 of the paper, regenerated).

use crate::decompose::Decomposition;
use crate::optree::{EdgeKind, OpDetail, OperatorTree};
use crate::plan::{PlanNode, PlanTree};
use crate::relation::Catalog;
use std::fmt::Write as _;

/// Renders an execution plan tree as DOT.
pub fn plan_dot(plan: &PlanTree, catalog: &Catalog) -> String {
    let mut out = String::from("digraph plan {\n  rankdir=BT;\n  node [shape=box];\n");
    for (i, node) in plan.nodes().iter().enumerate() {
        match node {
            PlanNode::Scan(r) => {
                let rel = catalog.get(*r);
                let _ = writeln!(
                    out,
                    "  n{i} [label=\"scan {}\\n{} tuples\"];",
                    rel.name, rel.tuples
                );
            }
            PlanNode::Join { outer, inner } => {
                let _ = writeln!(out, "  n{i} [label=\"⋈\"];");
                let _ = writeln!(out, "  n{} -> n{i} [label=\"outer\"];", outer.0);
                let _ = writeln!(out, "  n{} -> n{i} [label=\"inner\"];", inner.0);
            }
            PlanNode::Unary { kind, input } => {
                let label = match kind {
                    crate::plan::UnaryKind::HashAggregate { output_fraction } => {
                        format!("agg {output_fraction}")
                    }
                    crate::plan::UnaryKind::Sort => "sort".to_owned(),
                };
                let _ = writeln!(out, "  n{i} [label=\"{label}\"];");
                let _ = writeln!(out, "  n{} -> n{i};", input.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an operator tree as DOT; blocking edges are drawn bold, as in
/// Figure 1(b).
pub fn optree_dot(tree: &OperatorTree) -> String {
    let mut out = String::from("digraph optree {\n  rankdir=BT;\n  node [shape=ellipse];\n");
    for node in tree.nodes() {
        let label = match &node.detail {
            OpDetail::Scan {
                relation,
                out_tuples,
            } => {
                format!("scan {relation}\\nout {out_tuples}")
            }
            OpDetail::Build { in_tuples, .. } => format!("build\\nin {in_tuples}"),
            OpDetail::Probe {
                outer_tuples,
                out_tuples,
                ..
            } => {
                format!("probe\\nin {outer_tuples} out {out_tuples}")
            }
            OpDetail::Aggregate {
                in_tuples,
                out_tuples,
            } => {
                format!("agg\\nin {in_tuples} out {out_tuples}")
            }
            OpDetail::Sort { in_tuples } => format!("sort\\nn {in_tuples}"),
        };
        let _ = writeln!(out, "  op{} [label=\"{label}\"];", node.id.0);
        for (src, kind) in &node.inputs {
            let style = match kind {
                EdgeKind::Pipeline => "",
                EdgeKind::Blocking => " [style=bold]",
            };
            let _ = writeln!(out, "  op{} -> op{}{style};", src.0, node.id.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a decomposed query task tree as DOT (Figure 1(c)).
pub fn task_dot(decomposition: &Decomposition) -> String {
    let mut out = String::from("digraph tasks {\n  rankdir=BT;\n  node [shape=box];\n");
    for (i, node) in decomposition.tasks.nodes().iter().enumerate() {
        let ops: Vec<String> = node.ops.iter().map(|o| o.to_string()).collect();
        let _ = writeln!(out, "  t{i} [label=\"T{i}\\n{{{}}}\"];", ops.join(", "));
        if let Some(parent) = node.parent {
            let _ = writeln!(out, "  t{i} -> t{} [style=bold];", parent.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::KeyJoinMax;
    use crate::decompose::decompose;

    fn fixture() -> (PlanTree, Catalog) {
        let mut c = Catalog::new();
        let a = c.add_relation("a", 1_000.0);
        let b = c.add_relation("b", 2_000.0);
        (PlanTree::left_deep(&[a, b]), c)
    }

    #[test]
    fn plan_dot_mentions_relations() {
        let (p, c) = fixture();
        let dot = plan_dot(&p, &c);
        assert!(dot.starts_with("digraph plan"));
        assert!(dot.contains("scan a"));
        assert!(dot.contains("scan b"));
        assert!(dot.contains("outer"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn optree_dot_bolds_blocking_edges() {
        let (p, c) = fixture();
        let t = OperatorTree::expand(&p.annotate(&c, &KeyJoinMax));
        let dot = optree_dot(&t);
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("probe"));
        assert!(dot.contains("build"));
    }

    #[test]
    fn task_dot_lists_operators() {
        let (p, c) = fixture();
        let t = OperatorTree::expand(&p.annotate(&c, &KeyJoinMax));
        let d = decompose(&t).unwrap();
        let dot = task_dot(&d);
        assert!(dot.contains("T0"));
        assert!(dot.contains("op0"));
    }
}
