//! Join output cardinality models.
//!
//! The paper's experiments assume "simple key join operations in which the
//! size of the result relation is always equal to the size of the largest
//! of the two join operands" (Section 6.1) — the [`KeyJoinMax`] model.
//! [`SelectivityJoin`] provides the classic `σ·‖L‖·‖R‖` alternative for
//! workloads beyond the paper's setup.

/// Estimates the output cardinality of a join from its input
/// cardinalities.
pub trait CardinalityModel {
    /// Output tuples of `outer ⋈ inner`.
    fn join_output(&self, outer_tuples: f64, inner_tuples: f64) -> f64;
}

/// The paper's key-join assumption: `‖L ⋈ R‖ = max(‖L‖, ‖R‖)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyJoinMax;

impl CardinalityModel for KeyJoinMax {
    #[inline]
    fn join_output(&self, outer_tuples: f64, inner_tuples: f64) -> f64 {
        outer_tuples.max(inner_tuples)
    }
}

/// Independence-assumption join: `‖L ⋈ R‖ = σ·‖L‖·‖R‖`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectivityJoin {
    /// Join selectivity `σ ∈ [0, 1]`.
    pub selectivity: f64,
}

impl SelectivityJoin {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns a message when `σ` is outside `[0, 1]`.
    pub fn new(selectivity: f64) -> Result<Self, String> {
        if !(selectivity.is_finite() && (0.0..=1.0).contains(&selectivity)) {
            return Err(format!("selectivity must be in [0, 1], got {selectivity}"));
        }
        Ok(SelectivityJoin { selectivity })
    }
}

impl CardinalityModel for SelectivityJoin {
    #[inline]
    fn join_output(&self, outer_tuples: f64, inner_tuples: f64) -> f64 {
        self.selectivity * outer_tuples * inner_tuples
    }
}

impl<M: CardinalityModel + ?Sized> CardinalityModel for &M {
    fn join_output(&self, outer_tuples: f64, inner_tuples: f64) -> f64 {
        (**self).join_output(outer_tuples, inner_tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_join_takes_max() {
        assert_eq!(KeyJoinMax.join_output(10.0, 25.0), 25.0);
        assert_eq!(KeyJoinMax.join_output(25.0, 10.0), 25.0);
        assert_eq!(KeyJoinMax.join_output(0.0, 0.0), 0.0);
    }

    #[test]
    fn selectivity_join_multiplies() {
        let m = SelectivityJoin::new(0.001).unwrap();
        assert!((m.join_output(1_000.0, 2_000.0) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_bounds_checked() {
        assert!(SelectivityJoin::new(-0.1).is_err());
        assert!(SelectivityJoin::new(1.5).is_err());
        assert!(SelectivityJoin::new(f64::NAN).is_err());
        assert!(SelectivityJoin::new(1.0).is_ok());
    }

    #[test]
    fn trait_object_usable() {
        let m: &dyn CardinalityModel = &KeyJoinMax;
        assert_eq!(m.join_output(1.0, 2.0), 2.0);
    }
}
