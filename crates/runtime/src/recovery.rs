//! Failure-aware rescheduling: re-packing lost clones' unfinished work
//! onto the surviving site set.
//!
//! When a site crashes mid-phase, its resident clones are evicted with
//! their remaining intrinsic time. The runtime scales each lost clone's
//! work vector by its unfinished fraction, inflates it with a *rebuild
//! surcharge* (re-reading the partition from a replica and re-shipping
//! it costs extra disk and network work — the data-placement constraint
//! that pinned the clone to the dead site is migrated, not ignored), and
//! hands the batch to [`replan_lost`], which runs the paper's
//! multi-dimensional LPT list rule (`schedule_with_degrees`, the packing
//! half of Figure 3's OPERATORSCHEDULE) over a [`SystemSpec`] shrunk to
//! the alive sites — degree selection is *not* re-run, because a lost
//! clone's parallelism was already chosen at admission (re-widening
//! every remnant would multiply the clone population under repeated
//! crashes). The multi-resource list rule re-applies unchanged when the
//! machine set changes (Perotin et al., arXiv:2106.07059), which is
//! exactly what makes crash recovery a re-run of the packer rather than
//! a special code path.
//!
//! If nothing is alive (or packing fails), the runtime parks the work on
//! a capped exponential-backoff retry; exhausting the cap aborts the
//! query with [`RuntimeError::Aborted`](crate::runtime::RuntimeError).

use mrs_core::comm::CommModel;
use mrs_core::error::ScheduleError;
use mrs_core::list::{schedule_with_degrees, ListOrder};
use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};
use mrs_core::resource::{SiteId, SiteSpec, SystemSpec};
use mrs_core::vector::WorkVector;

/// Knobs of the recovery loop.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// Rebuild surcharge: for each unit of lost work volume, this much
    /// extra work is added to the re-packed vectors, split evenly between
    /// the disk and network dimensions (all of it on the network for
    /// diskless layouts). Models re-reading the lost partition from a
    /// replica and re-shipping it.
    pub rebuild_factor: f64,
    /// Maximum recovery attempts per query before it is aborted.
    pub max_retries: u32,
    /// Base delay of the capped exponential retry backoff
    /// (`base · 2^attempt`, in virtual seconds).
    pub backoff_base: f64,
    /// Ceiling of the retry backoff delay.
    pub backoff_cap: f64,
    /// Graceful degradation: when `alive_sites / total_sites` falls
    /// below this fraction, new arrivals are shed instead of queued —
    /// the admission gate tightens rather than letting a shrunken
    /// machine drown. `0.0` (the default) never sheds.
    pub degrade_threshold: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            rebuild_factor: 0.1,
            max_retries: 5,
            backoff_base: 1.0,
            backoff_cap: 64.0,
            degrade_threshold: 0.0,
        }
    }
}

/// The capped exponential backoff delay before retry `attempt`
/// (0-based): `min(base · 2^attempt, cap)`.
pub fn backoff_delay(cfg: &RecoveryConfig, attempt: u32) -> f64 {
    let exp = 2.0f64.powi(attempt.min(62) as i32);
    (cfg.backoff_base * exp).min(cfg.backoff_cap)
}

/// Adds the rebuild surcharge to one lost work vector: `factor · total`
/// extra work, split between disk and network (all on the network if the
/// layout has no disk).
pub fn rebuild_inflated(work: &WorkVector, site: &SiteSpec, factor: f64) -> WorkVector {
    let mut w = work.clone();
    if factor <= 0.0 {
        return w;
    }
    let extra = factor * work.total();
    match site.disk_dim() {
        Some(disk) => {
            w.add_at(disk, 0.5 * extra);
            w.add_at(site.net_dim(), 0.5 * extra);
        }
        None => w.add_at(site.net_dim(), extra),
    }
    w
}

/// Re-packs `lost` work vectors onto the `alive` sites, returning the
/// new clone placements as `(site, work)` pairs in the *full* system's
/// site numbering.
///
/// Each lost vector becomes one floating operator *pinned to degree 1*:
/// a lost clone is the remnant of an operator whose parallelism was
/// already chosen at admission, so re-running `choose_degree` on it
/// would double-dip — and, under repeated crashes, multiply the clone
/// population without bound (every loss re-widened into several clones,
/// each loss of those re-widened again). The remnants are inflated by
/// [`rebuild_inflated`] and packed with the paper's multi-dimensional
/// LPT list rule (`schedule_with_degrees`) over a system of
/// `alive.len()` sites; packed site `k` maps back to `alive[k]`. One
/// lost clone therefore yields exactly one replacement clone.
///
/// # Panics
/// Panics if `alive` is empty (callers park the work on a retry
/// instead) or `lost` is empty.
pub fn replan_lost(
    lost: &[WorkVector],
    alive: &[SiteId],
    site: &SiteSpec,
    comm: &CommModel,
    rebuild_factor: f64,
) -> Result<Vec<(SiteId, WorkVector)>, ScheduleError> {
    assert!(!alive.is_empty(), "replan needs at least one alive site");
    assert!(!lost.is_empty(), "replan needs lost work");
    let ops: Vec<(OperatorSpec, usize)> = lost
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let spec = OperatorSpec::floating(
                OperatorId(i),
                OperatorKind::Other,
                rebuild_inflated(w, site, rebuild_factor),
                // The rebuild traffic is already charged explicitly on
                // the vectors; no additional repartitioning volume.
                0.0,
            );
            (spec, 1)
        })
        .collect();
    let survivors =
        SystemSpec::new(alive.len(), site.clone()).expect("non-empty alive set forms a system");
    let schedule = schedule_with_degrees(ops, &survivors, comm, ListOrder::LongestFirst)?;
    let mut placements = Vec::new();
    for (op, homes) in schedule.ops.iter().zip(&schedule.assignment.homes) {
        for (home, work) in homes.iter().zip(&op.clones) {
            placements.push((alive[home.0], work.clone()));
        }
    }
    Ok(placements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RecoveryConfig {
            backoff_base: 0.5,
            backoff_cap: 3.0,
            ..RecoveryConfig::default()
        };
        assert_eq!(backoff_delay(&cfg, 0), 0.5);
        assert_eq!(backoff_delay(&cfg, 1), 1.0);
        assert_eq!(backoff_delay(&cfg, 2), 2.0);
        assert_eq!(backoff_delay(&cfg, 3), 3.0, "capped");
        assert_eq!(backoff_delay(&cfg, 40), 3.0, "still capped");
    }

    #[test]
    fn rebuild_surcharge_lands_on_disk_and_net() {
        let site = SiteSpec::cpu_disk_net();
        let w = WorkVector::from_slice(&[10.0, 4.0, 6.0]);
        let inflated = rebuild_inflated(&w, &site, 0.1);
        // total 20 → surcharge 2, split 1 disk + 1 net.
        let disk = site.disk_dim().unwrap();
        let net = site.net_dim();
        let cpu = site.cpu_dim();
        assert_eq!(inflated[cpu], w[cpu]);
        assert!((inflated[disk] - (w[disk] + 1.0)).abs() < 1e-12);
        assert!((inflated[net] - (w[net] + 1.0)).abs() < 1e-12);
        // Zero factor is the identity.
        assert_eq!(rebuild_inflated(&w, &site, 0.0), w);
    }

    #[test]
    fn replan_places_everything_on_alive_sites_only() {
        let site = SiteSpec::cpu_disk_net();
        let comm = CommModel::paper_defaults();
        let lost = vec![
            WorkVector::from_slice(&[8.0, 3.0, 0.0]),
            WorkVector::from_slice(&[2.0, 1.0, 0.0]),
        ];
        // Survivors are a non-contiguous subset of a 6-site machine.
        let alive = vec![SiteId(1), SiteId(3), SiteId(4)];
        let placements = replan_lost(&lost, &alive, &site, &comm, 0.1).expect("packable");
        // Degree is pinned: one replacement clone per lost clone.
        assert_eq!(placements.len(), lost.len());
        for (s, w) in &placements {
            assert!(alive.contains(s), "placement on dead site {s:?}");
            assert!(w.total() > 0.0);
        }
        // Work is conserved and the rebuild surcharge added: the
        // placements sum to at least the unfinished work.
        let lost_total: f64 = lost.iter().map(WorkVector::total).sum();
        let placed_total: f64 = placements.iter().map(|(_, w)| w.total()).sum();
        assert!(
            placed_total >= lost_total - 1e-9,
            "placed {placed_total} < lost {lost_total}"
        );
    }

    #[test]
    fn replan_is_deterministic() {
        let site = SiteSpec::cpu_disk_net();
        let comm = CommModel::paper_defaults();
        let lost = vec![WorkVector::from_slice(&[5.0, 5.0, 1.0])];
        let alive = vec![SiteId(0), SiteId(2)];
        let a = replan_lost(&lost, &alive, &site, &comm, 0.2).unwrap();
        let b = replan_lost(&lost, &alive, &site, &comm, 0.2).unwrap();
        assert_eq!(a.len(), b.len());
        for ((sa, wa), (sb, wb)) in a.iter().zip(&b) {
            assert_eq!(sa, sb);
            assert_eq!(wa, wb);
        }
    }

    #[test]
    #[should_panic(expected = "alive site")]
    fn replan_refuses_empty_survivor_set() {
        let site = SiteSpec::cpu_disk_net();
        let comm = CommModel::paper_defaults();
        let lost = vec![WorkVector::from_slice(&[1.0, 0.0, 0.0])];
        let _ = replan_lost(&lost, &[], &site, &comm, 0.1);
    }
}
