//! The admission queue and its ordering policies.
//!
//! Queries wait here between arrival and admission. The queue is fully
//! deterministic: entries carry a submission sequence number that breaks
//! every tie, so a given policy always pops the same query regardless of
//! hash-map iteration order or float noise.

use crate::job::QueryId;

/// How the runtime picks the next query to admit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// First come, first served: strict arrival order.
    #[default]
    Fcfs,
    /// Smallest total work volume first (shortest-job-first analogue for
    /// multi-dimensional work; ties broken by arrival order).
    SmallestVolumeFirst,
    /// Round-robin over submitting clients: cycle through the distinct
    /// clients with queued work, taking each client's oldest query, so no
    /// stream starves behind a heavy one.
    RoundRobinFair,
}

impl AdmissionPolicy {
    /// Stable label used in experiment output and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fcfs => "fcfs",
            AdmissionPolicy::SmallestVolumeFirst => "svf",
            AdmissionPolicy::RoundRobinFair => "rr-fair",
        }
    }
}

#[derive(Clone, Debug)]
struct Pending {
    seq: u64,
    id: QueryId,
    client: usize,
    volume: f64,
}

/// The runtime's wait queue: insertion-ordered entries popped according
/// to an [`AdmissionPolicy`].
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    pending: Vec<Pending>,
    next_seq: u64,
    /// Last client served by the round-robin policy.
    last_client: Option<usize>,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            policy,
            pending: Vec::new(),
            next_seq: 0,
            last_client: None,
        }
    }

    /// The queue's policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Number of queries waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no queries wait.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueues a query. `volume` is its total work (the SVF key).
    pub fn push(&mut self, id: QueryId, client: usize, volume: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Pending {
            seq,
            id,
            client,
            volume,
        });
    }

    /// Removes a specific queued query (e.g. a deadline abort while still
    /// waiting). Returns whether it was present. Does not perturb the
    /// round-robin cursor.
    pub fn remove(&mut self, id: QueryId) -> bool {
        match self.pending.iter().position(|p| p.id == id) {
            Some(idx) => {
                self.pending.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Pops the next query under the queue's policy, or `None` if empty.
    pub fn pop(&mut self) -> Option<QueryId> {
        let idx = self.choose()?;
        let entry = self.pending.remove(idx);
        self.last_client = Some(entry.client);
        Some(entry.id)
    }

    fn choose(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        let idx = match self.policy {
            AdmissionPolicy::Fcfs => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.seq)
                .map(|(i, _)| i)?,
            AdmissionPolicy::SmallestVolumeFirst => self
                .pending
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.volume.total_cmp(&b.volume).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i)?,
            AdmissionPolicy::RoundRobinFair => {
                // The next distinct client strictly after `last_client` in
                // cyclic client-id order; within that client, oldest first.
                let target = {
                    let last = self.last_client;
                    let after = self
                        .pending
                        .iter()
                        .map(|p| p.client)
                        .filter(|c| last.is_none_or(|l| *c > l))
                        .min();
                    match after {
                        Some(c) => c,
                        None => self
                            .pending
                            .iter()
                            .map(|p| p.client)
                            .min()
                            .expect("queue is non-empty"),
                    }
                };
                self.pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.client == target)
                    .min_by_key(|(_, p)| p.seq)
                    .map(|(i, _)| i)?
            }
        };
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(q: &mut AdmissionQueue) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(QueryId(i)) = q.pop() {
            out.push(i);
        }
        out
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fcfs);
        q.push(QueryId(0), 0, 5.0);
        q.push(QueryId(1), 1, 1.0);
        q.push(QueryId(2), 0, 3.0);
        assert_eq!(ids(&mut q), vec![0, 1, 2]);
    }

    #[test]
    fn svf_orders_by_volume_with_seq_ties() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::SmallestVolumeFirst);
        q.push(QueryId(0), 0, 5.0);
        q.push(QueryId(1), 0, 1.0);
        q.push(QueryId(2), 0, 5.0);
        q.push(QueryId(3), 0, 3.0);
        assert_eq!(ids(&mut q), vec![1, 3, 0, 2]);
    }

    #[test]
    fn round_robin_cycles_clients() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::RoundRobinFair);
        // Client 0 floods; client 1 submits one query later.
        q.push(QueryId(0), 0, 1.0);
        q.push(QueryId(1), 0, 1.0);
        q.push(QueryId(2), 0, 1.0);
        q.push(QueryId(3), 1, 1.0);
        assert_eq!(q.pop(), Some(QueryId(0)));
        // Fair: client 1's query jumps the remaining flood.
        assert_eq!(q.pop(), Some(QueryId(3)));
        assert_eq!(q.pop(), Some(QueryId(1)));
        assert_eq!(q.pop(), Some(QueryId(2)));
    }

    #[test]
    fn remove_takes_out_a_queued_query() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fcfs);
        q.push(QueryId(0), 0, 1.0);
        q.push(QueryId(1), 0, 1.0);
        assert!(q.remove(QueryId(0)));
        assert!(!q.remove(QueryId(0)), "already gone");
        assert_eq!(ids(&mut q), vec![1]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdmissionPolicy::Fcfs.label(), "fcfs");
        assert_eq!(AdmissionPolicy::SmallestVolumeFirst.label(), "svf");
        assert_eq!(AdmissionPolicy::RoundRobinFair.label(), "rr-fair");
    }
}
