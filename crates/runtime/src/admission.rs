//! The admission queue and its ordering policies.
//!
//! Queries wait here between arrival and admission. The queue is fully
//! deterministic: entries carry a submission sequence number that breaks
//! every tie, so a given policy always pops the same query regardless of
//! hash-map iteration order or float noise.

use crate::job::QueryId;

/// How the runtime picks the next query to admit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// First come, first served: strict arrival order.
    #[default]
    Fcfs,
    /// Smallest total work volume first (shortest-job-first analogue for
    /// multi-dimensional work; ties broken by arrival order).
    SmallestVolumeFirst,
    /// Round-robin over submitting clients: cycle through the distinct
    /// clients with queued work, taking each client's oldest query, so no
    /// stream starves behind a heavy one.
    RoundRobinFair,
}

impl AdmissionPolicy {
    /// Stable label used in experiment output and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fcfs => "fcfs",
            AdmissionPolicy::SmallestVolumeFirst => "svf",
            AdmissionPolicy::RoundRobinFair => "rr-fair",
        }
    }
}

#[derive(Clone, Debug)]
struct Pending {
    seq: u64,
    id: QueryId,
    client: usize,
    volume: f64,
    /// Tombstone flag: popped/removed entries are marked dead in place
    /// (O(1)) instead of shifting the tail (`Vec::remove` was O(n) per
    /// admission, O(n²) per drained burst). Dead entries are skipped by
    /// every scan and physically reclaimed by amortized compaction.
    live: bool,
}

/// The runtime's wait queue: insertion-ordered entries popped according
/// to an [`AdmissionPolicy`].
///
/// Pops and removals tombstone in place and compact lazily (whenever
/// dead entries outnumber live ones), so each operation is amortized
/// O(live) at worst — O(1) for FCFS — while preserving the exact
/// deterministic order of the eager-removal implementation: entries are
/// ordered by submission `seq`, which tombstoning never perturbs.
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    pending: Vec<Pending>,
    next_seq: u64,
    /// Index of the first possibly-live entry: everything before it is
    /// dead. Entries are appended in `seq` order, so for FCFS this *is*
    /// the minimum-seq live entry.
    head: usize,
    /// Count of live entries (what [`AdmissionQueue::len`] reports).
    live: usize,
    /// Last client served by the round-robin policy.
    last_client: Option<usize>,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            policy,
            pending: Vec::new(),
            next_seq: 0,
            head: 0,
            live: 0,
            last_client: None,
        }
    }

    /// The queue's policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Number of queries waiting.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no queries wait.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Enqueues a query. `volume` is its total work (the SVF key).
    pub fn push(&mut self, id: QueryId, client: usize, volume: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Pending {
            seq,
            id,
            client,
            volume,
            live: true,
        });
        self.live += 1;
    }

    /// Removes a specific queued query (e.g. a deadline abort while still
    /// waiting). Returns whether it was present. Does not perturb the
    /// round-robin cursor.
    pub fn remove(&mut self, id: QueryId) -> bool {
        match self.pending[self.head..]
            .iter()
            .position(|p| p.live && p.id == id)
        {
            Some(off) => {
                self.bury(self.head + off);
                true
            }
            None => false,
        }
    }

    /// Pops the next query under the queue's policy, or `None` if empty.
    pub fn pop(&mut self) -> Option<QueryId> {
        let idx = self.choose()?;
        let entry = &self.pending[idx];
        let (id, client) = (entry.id, entry.client);
        self.last_client = Some(client);
        self.bury(idx);
        Some(id)
    }

    /// Tombstones the entry at `idx`, advances the head cursor past the
    /// dead prefix, and compacts once dead entries outnumber live ones
    /// (amortized O(1) per operation).
    fn bury(&mut self, idx: usize) {
        debug_assert!(self.pending[idx].live, "burying a dead entry");
        self.pending[idx].live = false;
        self.live -= 1;
        while self.head < self.pending.len() && !self.pending[self.head].live {
            self.head += 1;
        }
        // Compact when dead entries dominate (the slack constant keeps
        // tiny queues from thrashing): each compaction drops at least
        // half the slots, so its O(len) cost amortizes to O(1) per
        // bury. `retain` keeps relative (= seq) order, so compaction is
        // invisible to every policy.
        if self.pending.len() >= 2 * self.live + 16 {
            self.pending.retain(|p| p.live);
            self.head = 0;
        }
    }

    fn choose(&self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        let alive = || self.pending[self.head..].iter().filter(|p| p.live);
        let idx = match self.policy {
            // Appended in seq order, so the first live entry is the
            // minimum-seq live entry: O(1).
            AdmissionPolicy::Fcfs => self.head,
            AdmissionPolicy::SmallestVolumeFirst => self.pending[self.head..]
                .iter()
                .enumerate()
                .filter(|(_, p)| p.live)
                .min_by(|(_, a), (_, b)| a.volume.total_cmp(&b.volume).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| self.head + i)?,
            AdmissionPolicy::RoundRobinFair => {
                // The next distinct client strictly after `last_client` in
                // cyclic client-id order; within that client, oldest first.
                let target = {
                    let last = self.last_client;
                    let after = alive()
                        .map(|p| p.client)
                        .filter(|c| last.is_none_or(|l| *c > l))
                        .min();
                    match after {
                        Some(c) => c,
                        None => alive().map(|p| p.client).min().expect("queue is non-empty"),
                    }
                };
                self.pending[self.head..]
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.live && p.client == target)
                    .min_by_key(|(_, p)| p.seq)
                    .map(|(i, _)| self.head + i)?
            }
        };
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(q: &mut AdmissionQueue) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(QueryId(i)) = q.pop() {
            out.push(i);
        }
        out
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fcfs);
        q.push(QueryId(0), 0, 5.0);
        q.push(QueryId(1), 1, 1.0);
        q.push(QueryId(2), 0, 3.0);
        assert_eq!(ids(&mut q), vec![0, 1, 2]);
    }

    #[test]
    fn svf_orders_by_volume_with_seq_ties() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::SmallestVolumeFirst);
        q.push(QueryId(0), 0, 5.0);
        q.push(QueryId(1), 0, 1.0);
        q.push(QueryId(2), 0, 5.0);
        q.push(QueryId(3), 0, 3.0);
        assert_eq!(ids(&mut q), vec![1, 3, 0, 2]);
    }

    #[test]
    fn round_robin_cycles_clients() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::RoundRobinFair);
        // Client 0 floods; client 1 submits one query later.
        q.push(QueryId(0), 0, 1.0);
        q.push(QueryId(1), 0, 1.0);
        q.push(QueryId(2), 0, 1.0);
        q.push(QueryId(3), 1, 1.0);
        assert_eq!(q.pop(), Some(QueryId(0)));
        // Fair: client 1's query jumps the remaining flood.
        assert_eq!(q.pop(), Some(QueryId(3)));
        assert_eq!(q.pop(), Some(QueryId(1)));
        assert_eq!(q.pop(), Some(QueryId(2)));
    }

    #[test]
    fn remove_takes_out_a_queued_query() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::Fcfs);
        q.push(QueryId(0), 0, 1.0);
        q.push(QueryId(1), 0, 1.0);
        assert!(q.remove(QueryId(0)));
        assert!(!q.remove(QueryId(0)), "already gone");
        assert_eq!(ids(&mut q), vec![1]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdmissionPolicy::Fcfs.label(), "fcfs");
        assert_eq!(AdmissionPolicy::SmallestVolumeFirst.label(), "svf");
        assert_eq!(AdmissionPolicy::RoundRobinFair.label(), "rr-fair");
    }

    /// Reference model with eager `Vec::remove` semantics — the exact
    /// pre-tombstone implementation, kept here to pin the pop order.
    struct EagerQueue {
        policy: AdmissionPolicy,
        pending: Vec<Pending>,
        next_seq: u64,
        last_client: Option<usize>,
    }

    impl EagerQueue {
        fn new(policy: AdmissionPolicy) -> Self {
            EagerQueue {
                policy,
                pending: Vec::new(),
                next_seq: 0,
                last_client: None,
            }
        }

        fn push(&mut self, id: QueryId, client: usize, volume: f64) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push(Pending {
                seq,
                id,
                client,
                volume,
                live: true,
            });
        }

        fn remove(&mut self, id: QueryId) -> bool {
            match self.pending.iter().position(|p| p.id == id) {
                Some(idx) => {
                    self.pending.remove(idx);
                    true
                }
                None => false,
            }
        }

        fn pop(&mut self) -> Option<QueryId> {
            if self.pending.is_empty() {
                return None;
            }
            let idx = match self.policy {
                AdmissionPolicy::Fcfs => self
                    .pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| p.seq)
                    .map(|(i, _)| i)?,
                AdmissionPolicy::SmallestVolumeFirst => self
                    .pending
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.volume.total_cmp(&b.volume).then(a.seq.cmp(&b.seq)))
                    .map(|(i, _)| i)?,
                AdmissionPolicy::RoundRobinFair => {
                    let target = {
                        let last = self.last_client;
                        let after = self
                            .pending
                            .iter()
                            .map(|p| p.client)
                            .filter(|c| last.is_none_or(|l| *c > l))
                            .min();
                        match after {
                            Some(c) => c,
                            None => self
                                .pending
                                .iter()
                                .map(|p| p.client)
                                .min()
                                .expect("queue is non-empty"),
                        }
                    };
                    self.pending
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.client == target)
                        .min_by_key(|(_, p)| p.seq)
                        .map(|(i, _)| i)?
                }
            };
            let entry = self.pending.remove(idx);
            self.last_client = Some(entry.client);
            Some(entry.id)
        }
    }

    #[test]
    fn tombstoning_pins_the_eager_removal_order() {
        // A seeded mix of pushes, pops, and targeted removals, dense
        // enough to force head advances and several compactions: the
        // tombstone queue must agree with the eager reference on every
        // single operation, under every policy.
        use mrs_core::rng::DetRng;
        for policy in [
            AdmissionPolicy::Fcfs,
            AdmissionPolicy::SmallestVolumeFirst,
            AdmissionPolicy::RoundRobinFair,
        ] {
            let mut rng = DetRng::seed_from_u64(0xADA1_5510 ^ policy.label().len() as u64);
            let mut q = AdmissionQueue::new(policy);
            let mut r = EagerQueue::new(policy);
            let mut next_id = 0usize;
            let mut alive: Vec<QueryId> = Vec::new();
            for _ in 0..600 {
                match rng.gen_range(0u64..10) {
                    0..=4 => {
                        let id = QueryId(next_id);
                        next_id += 1;
                        let client = rng.gen_range(0usize..4);
                        let volume = rng.gen_range(1.0..100.0f64);
                        q.push(id, client, volume);
                        r.push(id, client, volume);
                        alive.push(id);
                    }
                    5..=7 => {
                        let a = q.pop();
                        let b = r.pop();
                        assert_eq!(a, b, "pop diverged under {}", policy.label());
                        if let Some(id) = a {
                            alive.retain(|x| *x != id);
                        }
                    }
                    _ => {
                        // Remove a random alive entry (or a bogus id).
                        let id = if alive.is_empty() || rng.gen_bool(0.2) {
                            QueryId(usize::MAX)
                        } else {
                            alive[rng.gen_range(0usize..alive.len())]
                        };
                        assert_eq!(
                            q.remove(id),
                            r.remove(id),
                            "remove diverged under {}",
                            policy.label()
                        );
                        alive.retain(|x| *x != id);
                    }
                }
                assert_eq!(q.len(), r.pending.len(), "len diverged");
                assert_eq!(q.is_empty(), r.pending.is_empty());
            }
            // Drain both fully: the tail order must match too.
            loop {
                let (a, b) = (q.pop(), r.pop());
                assert_eq!(a, b, "drain diverged under {}", policy.label());
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
