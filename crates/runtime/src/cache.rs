//! Plan-signature schedule cache: memoizes `tree_schedule` across a
//! templated query stream.
//!
//! Online serving workloads are dominated by *query templates* — the same
//! plan shape arriving over and over with identical cost vectors. The
//! TreeSchedule at admission is a pure function of
//! `(problem, f, system, comm, model)`; with the system, communication,
//! and response models fixed for a runtime's lifetime, the admission
//! schedule is fully determined by `(problem, f)`. The cache canonicalizes
//! that pair into a [`PlanSignature`] and memoizes the resulting
//! [`TreeScheduleResult`] behind an [`Arc`], so a template's second
//! arrival skips planning entirely.
//!
//! Two properties are non-negotiable:
//!
//! * **Exactness.** The signature quantizes every float at full 64-bit
//!   precision — the exact IEEE bit patterns, via `to_bits` — and encodes
//!   the complete plan shape (operator table, placement constraints, task
//!   graph, bindings). Signature equality therefore implies the fresh
//!   computation would be *bit-identical*, never merely similar: a lossy
//!   signature could collide two nearby problems and serve one of them a
//!   wrong schedule. The shadow-compute test (`verify` in
//!   [`RuntimeConfig`](crate::runtime::RuntimeConfig)) enforces this by
//!   re-planning on hits and comparing [`schedule_digest`]s.
//! * **Footprint invalidation.** `tree_schedule` plans against the full
//!   site set; the runtime's recovery layer reacts to crashes by
//!   re-packing *around* dead sites at dispatch. A cached schedule is
//!   still the correct *admission* schedule after any fault, but the
//!   cache semantics stay conservative: never serve a plan whose own
//!   environment has shifted. Each entry records its *site footprint* —
//!   the sorted, deduplicated set of homes its clones land on — and each
//!   site remembers the epoch of its last availability change
//!   ([`ScheduleCache::bump_epoch`] takes the changed site). A lookup
//!   re-validates the entry against its footprint: if any touched site
//!   changed after the entry was inserted, the entry is evicted
//!   (counted in [`CacheStats::stale_evictions`]) and the lookup counts
//!   as a miss. Faults on sites a plan never touches leave it servable —
//!   the previous scheme cleared the whole table on every bump, which on
//!   fault-heavy streams threw away every unrelated template. Rate
//!   changes would bump epochs too, but straggler rates are fixed at
//!   construction in the current runtime.

use mrs_core::operator::Placement;
use mrs_core::shared::{ScheduleFragment, SharedStats, SubtreeSig};
use mrs_core::tree::{TreeProblem, TreeScheduleResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing how a run's admissions hit the schedule cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Admissions served from the cache (no `tree_schedule` call).
    pub hits: u64,
    /// Admissions that computed a fresh plan (includes every admission
    /// when the cache is disabled) — the run's re-plan count.
    pub misses: u64,
    /// Epoch bumps: per-site environment changes (site crash or
    /// restore).
    pub epoch_bumps: u64,
    /// Entries evicted at lookup because a site in their footprint
    /// changed after insertion.
    pub stale_evictions: u64,
    /// Subtree fragments served from the memo by the shared planner
    /// (one per spliced subtree; zero when plan sharing is off).
    pub subtree_hits: u64,
    /// Fragmentable subtrees the shared planner had to compute fresh.
    pub subtree_misses: u64,
    /// Phase schedules taken from the subtree memo across all splices.
    pub fragments_spliced: u64,
    /// Task pipelines actually packed — the unit of planning work plan
    /// sharing avoids. Unshared paths count every task of every plan
    /// they compute, so shared/unshared runs compare directly.
    pub tasks_planned: u64,
    /// MQO batches released from the admission queue (zero unless the
    /// runtime runs with a batch window).
    pub batches_released: u64,
    /// Queries released across all MQO batches; divided by
    /// `batches_released` this gives the mean batch occupancy.
    pub batch_members: u64,
}

impl CacheStats {
    /// Fraction of admissions served from the cache (`0.0` when no
    /// admission happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The canonical, hashable form of `(TreeProblem, f)`. Two problems share
/// a signature iff a fresh `tree_schedule` over them (same system/models)
/// performs bit-identical arithmetic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanSignature(Vec<u64>);

impl PlanSignature {
    /// Canonicalizes `problem` and the granularity `f` into a signature
    /// with no governed degree cap ([`PlanSignature::of_capped`] with
    /// `None`).
    pub fn of(problem: &TreeProblem, f: f64) -> Self {
        PlanSignature::of_capped(problem, f, None)
    }

    /// Canonicalizes `(problem, f, cap)` into a signature, where `cap` is
    /// the overload controller's governed clone-degree cap (see
    /// [`tree_schedule_capped`](mrs_core::tree::tree_schedule_capped)).
    /// The cap is part of the plan's identity: a template planned
    /// degraded and the same template planned at full parallelism get
    /// distinct signatures and coexist in the cache.
    ///
    /// Encoding: every float contributes its exact `to_bits` pattern;
    /// every enum a discriminant word; every list its length followed by
    /// its elements; the cap one word (`0` = uncapped, else `cap + 1` —
    /// injective because caps are finite). The encoding is injective
    /// over valid problems, so collisions are impossible rather than
    /// improbable.
    pub fn of_capped(problem: &TreeProblem, f: f64, cap: Option<usize>) -> Self {
        let mut w = Vec::with_capacity(8 + problem.ops.len() * 8);
        w.push(f.to_bits());
        w.push(cap.map_or(0, |c| c as u64 + 1));
        w.push(problem.ops.len() as u64);
        for op in &problem.ops {
            w.push(op.id.0 as u64);
            w.push(op.kind as u64);
            w.push(op.processing.dim() as u64);
            for i in 0..op.processing.dim() {
                w.push(op.processing[i].to_bits());
            }
            w.push(op.data_volume.to_bits());
            match &op.placement {
                Placement::Floating => w.push(0),
                Placement::Rooted(homes) => {
                    w.push(1);
                    w.push(homes.len() as u64);
                    w.extend(homes.iter().map(|s| s.0 as u64));
                }
            }
        }
        w.push(problem.tasks.len() as u64);
        for node in problem.tasks.nodes() {
            w.push(node.ops.len() as u64);
            w.extend(node.ops.iter().map(|o| o.0 as u64));
            w.push(node.parent.map_or(u64::MAX, |p| p.0 as u64));
        }
        w.push(problem.bindings.len() as u64);
        for b in &problem.bindings {
            w.push(b.dependent.0 as u64);
            w.push(b.source.0 as u64);
        }
        PlanSignature(w)
    }
}

/// One memoized schedule with its coherence metadata.
#[derive(Debug)]
struct CacheEntry {
    /// The memoized schedule.
    schedule: Arc<TreeScheduleResult>,
    /// Global epoch at insertion time.
    insert_epoch: u64,
    /// Sorted, deduplicated site footprint (see [`schedule_footprint`]).
    touched: Vec<usize>,
}

/// One memoized subtree fragment with its coherence metadata — the
/// subtree-grained analogue of [`CacheEntry`], validated against its own
/// per-fragment footprint at lookup.
#[derive(Debug)]
struct FragmentEntry {
    /// The memoized sub-schedule in canonical id space.
    frag: Arc<ScheduleFragment>,
    /// Global epoch at insertion time.
    insert_epoch: u64,
    /// Sorted, deduplicated site footprint of the fragment.
    touched: Vec<usize>,
    /// Bit-level digest of the fragment at insertion (see
    /// [`fragment_digest`]), replayed by the sharing-coherence audit.
    digest: u64,
}

/// An epoch-guarded memo table from [`PlanSignature`] to the schedule,
/// with per-site invalidation. See the [module docs](self).
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: HashMap<PlanSignature, CacheEntry>,
    /// Subtree-grained memo for the shared planner, same invalidation
    /// discipline as `entries` but with per-fragment footprints.
    subtree: HashMap<SubtreeSig, FragmentEntry>,
    /// Global epoch: incremented on every environment change.
    epoch: u64,
    /// Per site, the global epoch of its last availability change (`0` =
    /// never changed).
    site_epoch: Vec<u64>,
    stats: CacheStats,
}

impl ScheduleCache {
    /// An empty cache at epoch 0 over `sites` sites.
    pub fn new(sites: usize) -> Self {
        ScheduleCache {
            site_epoch: vec![0; sites],
            ..ScheduleCache::default()
        }
    }

    /// The current global epoch (bumped on every environment change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of `site`'s last availability change (`0` if it never
    /// changed).
    pub fn site_epoch(&self, site: usize) -> u64 {
        self.site_epoch.get(site).copied().unwrap_or(0)
    }

    /// Hit/miss/bump counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized schedules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `sig`, counting a hit or miss. An entry whose footprint
    /// shifted (some touched site bumped after insertion) is evicted and
    /// counted as both a miss and a stale eviction. A valid hit returns
    /// the schedule, the epoch it was inserted under, and its footprint
    /// (both surfaced to the cache-coherence audit).
    pub fn get(
        &mut self,
        sig: &PlanSignature,
    ) -> Option<(Arc<TreeScheduleResult>, u64, Vec<usize>)> {
        if let Some(entry) = self.entries.get(sig) {
            let fresh = entry
                .touched
                .iter()
                .all(|&s| self.site_epoch(s) <= entry.insert_epoch);
            if fresh {
                self.stats.hits += 1;
                return Some((
                    Arc::clone(&entry.schedule),
                    entry.insert_epoch,
                    entry.touched.clone(),
                ));
            }
            self.entries.remove(sig);
            self.stats.stale_evictions += 1;
        }
        self.stats.misses += 1;
        None
    }

    /// Records a freshly computed schedule under `sig`, stamped with the
    /// current epoch and its site footprint (sorted and deduplicated
    /// here, so callers can pass raw home lists).
    pub fn insert(
        &mut self,
        sig: PlanSignature,
        schedule: Arc<TreeScheduleResult>,
        mut touched: Vec<usize>,
    ) {
        touched.sort_unstable();
        touched.dedup();
        self.entries.insert(
            sig,
            CacheEntry {
                schedule,
                insert_epoch: self.epoch,
                touched,
            },
        );
    }

    /// Counts a plan computed while the cache is disabled, so the re-plan
    /// metric stays meaningful either way. `tasks` is the plan's task
    /// count, charged to [`CacheStats::tasks_planned`] so shared and
    /// unshared runs report planning work on the same scale.
    pub fn count_uncached_plan(&mut self, tasks: usize) {
        self.stats.misses += 1;
        self.stats.tasks_planned += tasks as u64;
    }

    /// Number of memoized subtree fragments.
    pub fn fragments_len(&self) -> usize {
        self.subtree.len()
    }

    /// Looks up a subtree fragment. A stale entry (some touched site
    /// bumped after insertion) is evicted, counted in
    /// [`CacheStats::stale_evictions`], and reported as a miss. A valid
    /// hit returns the fragment plus the coherence metadata the
    /// sharing audit events carry (insert epoch, footprint, digest).
    /// Hit/miss *counters* are charged by [`ScheduleCache::absorb_shared`]
    /// from the planner's own tally, not here, so a splice is counted
    /// exactly once.
    pub fn fragment_get(
        &mut self,
        sig: &SubtreeSig,
    ) -> Option<(Arc<ScheduleFragment>, u64, Vec<usize>, u64)> {
        if let Some(entry) = self.subtree.get(sig) {
            let fresh = entry
                .touched
                .iter()
                .all(|&s| self.site_epoch(s) <= entry.insert_epoch);
            if fresh {
                return Some((
                    Arc::clone(&entry.frag),
                    entry.insert_epoch,
                    entry.touched.clone(),
                    entry.digest,
                ));
            }
            self.subtree.remove(sig);
            self.stats.stale_evictions += 1;
        }
        None
    }

    /// Memoizes a freshly computed subtree fragment, stamped with the
    /// current epoch, its own footprint, and its bit-level digest.
    /// Returns the digest so the caller can log it.
    pub fn fragment_insert(&mut self, sig: SubtreeSig, frag: Arc<ScheduleFragment>) -> u64 {
        let digest = fragment_digest(&frag);
        let touched = frag.footprint();
        self.subtree.insert(
            sig,
            FragmentEntry {
                frag,
                insert_epoch: self.epoch,
                touched,
                digest,
            },
        );
        digest
    }

    /// Folds one `tree_schedule_shared` call's counters into the run's
    /// cache statistics.
    pub fn absorb_shared(&mut self, shared: &SharedStats) {
        self.stats.subtree_hits += shared.subtree_hits;
        self.stats.subtree_misses += shared.subtree_misses;
        self.stats.fragments_spliced += shared.fragments_spliced;
        self.stats.tasks_planned += shared.tasks_planned;
    }

    /// Charges an unshared (whole-plan) computation's packing work, so
    /// [`CacheStats::tasks_planned`] is comparable across modes.
    pub fn count_planned_tasks(&mut self, tasks: usize) {
        self.stats.tasks_planned += tasks as u64;
    }

    /// `site`'s availability changed (crash or restore): advance the
    /// global epoch and stamp the site. Entries are *not* cleared here;
    /// each is re-validated against its own footprint at lookup, so
    /// plans that never touch `site` stay servable.
    pub fn bump_epoch(&mut self, site: usize) {
        self.epoch += 1;
        self.stats.epoch_bumps += 1;
        if let Some(e) = self.site_epoch.get_mut(site) {
            *e = self.epoch;
        }
    }
}

/// The sorted, deduplicated set of sites a schedule's clones land on —
/// the footprint a cache entry is validated against.
pub fn schedule_footprint(schedule: &TreeScheduleResult) -> Vec<usize> {
    let mut touched: Vec<usize> = schedule
        .phases
        .iter()
        .flat_map(|p| p.schedule.assignment.homes.iter())
        .flat_map(|homes| homes.iter().map(|s| s.0))
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched
}

/// A canonical bit-level digest of a schedule, used by the shadow-compute
/// verification to prove a cache hit byte-identical to a fresh plan. Walks
/// every numeric field: phase levels and makespans, operator degrees,
/// per-clone work-vector components, clone homes, and the total response
/// time — all floats as exact bit patterns.
pub fn schedule_digest(schedule: &TreeScheduleResult) -> Vec<u64> {
    let mut w = Vec::new();
    w.push(schedule.response_time.to_bits());
    w.push(schedule.phases.len() as u64);
    for phase in &schedule.phases {
        w.push(phase.level as u64);
        w.push(phase.makespan.to_bits());
        w.push(phase.schedule.ops.len() as u64);
        for (op, homes) in phase
            .schedule
            .ops
            .iter()
            .zip(&phase.schedule.assignment.homes)
        {
            w.push(op.spec.id.0 as u64);
            w.push(op.degree as u64);
            for clone in &op.clones {
                for i in 0..clone.dim() {
                    w.push(clone[i].to_bits());
                }
            }
            w.extend(homes.iter().map(|s| s.0 as u64));
        }
    }
    w
}

/// A 64-bit FNV-1a fold over a subtree fragment's complete numeric
/// content — per-level operator ids, degrees, clone work vectors (exact
/// bit patterns), and clone homes. The sharing-coherence audit replays
/// these digests: every splice of a signature must carry the digest its
/// insertion recorded, proving the spliced bytes are the memoized bytes.
pub fn fragment_digest(frag: &ScheduleFragment) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(frag.levels.len() as u64);
    for phase in &frag.levels {
        mix(phase.ops.len() as u64);
        for (op, homes) in phase.ops.iter().zip(&phase.assignment.homes) {
            mix(op.spec.id.0 as u64);
            mix(op.degree as u64);
            for clone in &op.clones {
                for i in 0..clone.dim() {
                    mix(clone[i].to_bits());
                }
            }
            for s in homes {
                mix(s.0 as u64);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};
    use mrs_core::resource::SiteId;
    use mrs_core::tasks::{HomeBinding, TaskGraph};
    use mrs_core::vector::WorkVector;

    fn problem(cpu: f64) -> TreeProblem {
        TreeProblem {
            ops: vec![OperatorSpec::floating(
                OperatorId(0),
                OperatorKind::Scan,
                WorkVector::from_slice(&[cpu, 1.0, 0.0]),
                64.0,
            )],
            tasks: TaskGraph::single_task(vec![OperatorId(0)]),
            bindings: vec![],
        }
    }

    fn sched() -> Arc<TreeScheduleResult> {
        Arc::new(TreeScheduleResult {
            phases: vec![],
            response_time: 1.5,
        })
    }

    #[test]
    fn identical_problems_share_a_signature() {
        assert_eq!(
            PlanSignature::of(&problem(3.0), 0.7),
            PlanSignature::of(&problem(3.0), 0.7)
        );
    }

    #[test]
    fn any_input_perturbation_changes_the_signature() {
        let base = PlanSignature::of(&problem(3.0), 0.7);
        // Work vector off by one ulp.
        assert_ne!(
            base,
            PlanSignature::of(&problem(f64::from_bits(3.0f64.to_bits() + 1)), 0.7)
        );
        // Different granularity.
        assert_ne!(base, PlanSignature::of(&problem(3.0), 0.71));
        // Different kind.
        let mut p = problem(3.0);
        p.ops[0].kind = OperatorKind::Sort;
        assert_ne!(base, PlanSignature::of(&p, 0.7));
        // Rooted placement.
        let mut p = problem(3.0);
        p.ops[0].placement = Placement::Rooted(vec![SiteId(1)]);
        assert_ne!(base, PlanSignature::of(&p, 0.7));
        // Extra binding.
        let mut p = problem(3.0);
        p.bindings.push(HomeBinding {
            dependent: OperatorId(0),
            source: OperatorId(0),
        });
        assert_ne!(base, PlanSignature::of(&p, 0.7));
    }

    #[test]
    fn governed_cap_is_part_of_the_signature() {
        let p = problem(3.0);
        // Uncapped via either entry point: identical.
        assert_eq!(
            PlanSignature::of(&p, 0.7),
            PlanSignature::of_capped(&p, 0.7, None)
        );
        // Distinct caps, distinct signatures — degraded and full plans
        // coexist in the cache.
        let uncapped = PlanSignature::of_capped(&p, 0.7, None);
        let cap2 = PlanSignature::of_capped(&p, 0.7, Some(2));
        let cap4 = PlanSignature::of_capped(&p, 0.7, Some(4));
        assert_ne!(uncapped, cap2);
        assert_ne!(cap2, cap4);
        // cap = 0 must not collide with uncapped (the +1 offset).
        assert_ne!(uncapped, PlanSignature::of_capped(&p, 0.7, Some(0)));
        assert_eq!(cap2, PlanSignature::of_capped(&p, 0.7, Some(2)));
    }

    #[test]
    fn cache_counts_hits_misses_and_bumps() {
        let mut cache = ScheduleCache::new(4);
        let sig = PlanSignature::of(&problem(2.0), 0.7);
        assert!(cache.get(&sig).is_none());
        let sched = sched();
        cache.insert(sig.clone(), Arc::clone(&sched), vec![2, 0, 2]);
        assert_eq!(cache.len(), 1);
        let (hit, inserted, touched) = cache.get(&sig).expect("second lookup hits");
        assert!(Arc::ptr_eq(&hit, &sched));
        assert_eq!(inserted, cache.epoch(), "hit is epoch-coherent");
        assert_eq!(touched, vec![0, 2], "footprint sorted and deduplicated");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn bump_on_a_touched_site_evicts_at_lookup() {
        let mut cache = ScheduleCache::new(4);
        let sig = PlanSignature::of(&problem(2.0), 0.7);
        cache.get(&sig);
        cache.insert(sig.clone(), sched(), vec![0, 2]);
        cache.bump_epoch(2);
        assert_eq!(cache.epoch(), 1);
        assert_eq!(cache.site_epoch(2), 1);
        assert!(cache.get(&sig).is_none(), "footprint site changed");
        assert_eq!(cache.len(), 0, "stale entry evicted");
        let stats = cache.stats();
        assert_eq!(stats.epoch_bumps, 1);
        assert_eq!(stats.stale_evictions, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn bump_on_an_untouched_site_keeps_the_entry_servable() {
        let mut cache = ScheduleCache::new(4);
        let sig = PlanSignature::of(&problem(2.0), 0.7);
        cache.get(&sig);
        cache.insert(sig.clone(), sched(), vec![0, 2]);
        cache.bump_epoch(3);
        let (_, inserted, _) = cache.get(&sig).expect("footprint untouched by the bump");
        assert_eq!(inserted, 0, "entry still carries its insert epoch");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().stale_evictions, 0);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    fn fragment_for(sites: &[usize]) -> Arc<ScheduleFragment> {
        use mrs_core::schedule::{Assignment, PhaseSchedule, ScheduledOperator};
        let spec = OperatorSpec::floating(
            OperatorId(0),
            OperatorKind::Scan,
            WorkVector::from_slice(&[1.0, 0.5, 0.0]),
            64.0,
        );
        let clones = vec![WorkVector::from_slice(&[1.0, 0.5, 0.0]); sites.len()];
        Arc::new(ScheduleFragment {
            levels: vec![PhaseSchedule {
                ops: vec![ScheduledOperator {
                    spec,
                    degree: sites.len(),
                    clones,
                }],
                assignment: Assignment {
                    homes: vec![sites.iter().map(|&s| SiteId(s)).collect()],
                },
            }],
        })
    }

    fn sig_for(cpu: f64) -> SubtreeSig {
        mrs_core::shared::subtree_signatures(&problem(cpu), 0.7, None).expect("valid problem")[0]
            .clone()
    }

    #[test]
    fn fragment_memo_round_trips_with_metadata() {
        let mut cache = ScheduleCache::new(4);
        let sig = sig_for(2.0);
        assert!(cache.fragment_get(&sig).is_none());
        let frag = fragment_for(&[1, 3]);
        let digest = cache.fragment_insert(sig.clone(), Arc::clone(&frag));
        assert_eq!(cache.fragments_len(), 1);
        let (hit, inserted, touched, d) = cache.fragment_get(&sig).expect("memoized");
        assert!(Arc::ptr_eq(&hit, &frag));
        assert_eq!(inserted, 0);
        assert_eq!(touched, vec![1, 3]);
        assert_eq!(d, digest);
        assert_eq!(d, fragment_digest(&frag));
    }

    #[test]
    fn fragment_footprint_bump_evicts_only_touching_fragments() {
        let mut cache = ScheduleCache::new(4);
        let hit_sig = sig_for(2.0);
        let miss_sig = sig_for(3.0);
        cache.fragment_insert(hit_sig.clone(), fragment_for(&[0]));
        cache.fragment_insert(miss_sig.clone(), fragment_for(&[2]));
        cache.bump_epoch(2);
        assert!(cache.fragment_get(&miss_sig).is_none(), "footprint hit");
        assert!(
            cache.fragment_get(&hit_sig).is_some(),
            "footprint untouched"
        );
        assert_eq!(cache.fragments_len(), 1);
        assert_eq!(cache.stats().stale_evictions, 1);
    }

    #[test]
    fn absorb_shared_accumulates_planner_counters() {
        let mut cache = ScheduleCache::new(2);
        cache.absorb_shared(&SharedStats {
            subtree_hits: 2,
            subtree_misses: 1,
            fragments_spliced: 5,
            tasks_planned: 3,
        });
        cache.count_uncached_plan(4);
        let stats = cache.stats();
        assert_eq!(stats.subtree_hits, 2);
        assert_eq!(stats.subtree_misses, 1);
        assert_eq!(stats.fragments_spliced, 5);
        assert_eq!(stats.tasks_planned, 7);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn fragment_digest_is_content_sensitive() {
        let a = fragment_for(&[0, 1]);
        let b = fragment_for(&[0, 2]);
        assert_ne!(fragment_digest(&a), fragment_digest(&b));
        assert_eq!(fragment_digest(&a), fragment_digest(&fragment_for(&[0, 1])));
    }

    #[test]
    fn digest_reflects_every_schedule_field() {
        let a = TreeScheduleResult {
            phases: vec![],
            response_time: 2.0,
        };
        let mut b = a.clone();
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        b.response_time = f64::from_bits(2.0f64.to_bits() + 1);
        assert_ne!(schedule_digest(&a), schedule_digest(&b));
    }
}
