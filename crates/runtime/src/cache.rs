//! Plan-signature schedule cache: memoizes `tree_schedule` across a
//! templated query stream.
//!
//! Online serving workloads are dominated by *query templates* — the same
//! plan shape arriving over and over with identical cost vectors. The
//! TreeSchedule at admission is a pure function of
//! `(problem, f, system, comm, model)`; with the system, communication,
//! and response models fixed for a runtime's lifetime, the admission
//! schedule is fully determined by `(problem, f)`. The cache canonicalizes
//! that pair into a [`PlanSignature`] and memoizes the resulting
//! [`TreeScheduleResult`] behind an [`Arc`], so a template's second
//! arrival skips planning entirely.
//!
//! Two properties are non-negotiable:
//!
//! * **Exactness.** The signature quantizes every float at full 64-bit
//!   precision — the exact IEEE bit patterns, via `to_bits` — and encodes
//!   the complete plan shape (operator table, placement constraints, task
//!   graph, bindings). Signature equality therefore implies the fresh
//!   computation would be *bit-identical*, never merely similar: a lossy
//!   signature could collide two nearby problems and serve one of them a
//!   wrong schedule. The shadow-compute test (`verify` in
//!   [`RuntimeConfig`](crate::runtime::RuntimeConfig)) enforces this by
//!   re-planning on hits and comparing [`schedule_digest`]s.
//! * **Epoch invalidation.** `tree_schedule` plans against the full site
//!   set; the runtime's recovery layer reacts to crashes by re-packing
//!   *around* dead sites at dispatch. A cached schedule computed before a
//!   failure is still the correct *admission* schedule, but to keep the
//!   cache semantics conservative — never serve a plan whose environment
//!   has shifted — any site failure or restore bumps the epoch
//!   ([`ScheduleCache::bump_epoch`]), which clears the cache wholesale.
//!   Rate changes would bump it too, but straggler rates are fixed at
//!   construction in the current runtime.

use mrs_core::operator::Placement;
use mrs_core::tree::{TreeProblem, TreeScheduleResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing how a run's admissions hit the schedule cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Admissions served from the cache (no `tree_schedule` call).
    pub hits: u64,
    /// Admissions that computed a fresh plan (includes every admission
    /// when the cache is disabled) — the run's re-plan count.
    pub misses: u64,
    /// Epoch bumps: cache-clearing environment changes (site crash or
    /// restore).
    pub epoch_bumps: u64,
}

impl CacheStats {
    /// Fraction of admissions served from the cache (`0.0` when no
    /// admission happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The canonical, hashable form of `(TreeProblem, f)`. Two problems share
/// a signature iff a fresh `tree_schedule` over them (same system/models)
/// performs bit-identical arithmetic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanSignature(Vec<u64>);

impl PlanSignature {
    /// Canonicalizes `problem` and the granularity `f` into a signature.
    ///
    /// Encoding: every float contributes its exact `to_bits` pattern;
    /// every enum a discriminant word; every list its length followed by
    /// its elements. The encoding is injective over valid problems, so
    /// collisions are impossible rather than improbable.
    pub fn of(problem: &TreeProblem, f: f64) -> Self {
        let mut w = Vec::with_capacity(8 + problem.ops.len() * 8);
        w.push(f.to_bits());
        w.push(problem.ops.len() as u64);
        for op in &problem.ops {
            w.push(op.id.0 as u64);
            w.push(op.kind as u64);
            w.push(op.processing.dim() as u64);
            for i in 0..op.processing.dim() {
                w.push(op.processing[i].to_bits());
            }
            w.push(op.data_volume.to_bits());
            match &op.placement {
                Placement::Floating => w.push(0),
                Placement::Rooted(homes) => {
                    w.push(1);
                    w.push(homes.len() as u64);
                    w.extend(homes.iter().map(|s| s.0 as u64));
                }
            }
        }
        w.push(problem.tasks.len() as u64);
        for node in problem.tasks.nodes() {
            w.push(node.ops.len() as u64);
            w.extend(node.ops.iter().map(|o| o.0 as u64));
            w.push(node.parent.map_or(u64::MAX, |p| p.0 as u64));
        }
        w.push(problem.bindings.len() as u64);
        for b in &problem.bindings {
            w.push(b.dependent.0 as u64);
            w.push(b.source.0 as u64);
        }
        PlanSignature(w)
    }
}

/// An epoch-guarded memo table from [`PlanSignature`] to the schedule.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    /// Each entry remembers the epoch it was inserted under. Bumping
    /// clears the table, so a hit's insert epoch always equals the
    /// current epoch — the pair is surfaced anyway as an audit tripwire
    /// (a future partial-invalidation scheme must keep it true).
    entries: HashMap<PlanSignature, (Arc<TreeScheduleResult>, u64)>,
    epoch: u64,
    stats: CacheStats,
}

impl ScheduleCache {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// The current epoch (bumped on every environment change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hit/miss/bump counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized schedules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `sig`, counting a hit or miss. A hit returns the
    /// schedule together with the epoch it was inserted under (for the
    /// cache-coherence audit; see the `entries` field).
    pub fn get(&mut self, sig: &PlanSignature) -> Option<(Arc<TreeScheduleResult>, u64)> {
        match self.entries.get(sig) {
            Some((hit, inserted)) => {
                self.stats.hits += 1;
                Some((Arc::clone(hit), *inserted))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records a freshly computed schedule under `sig`, stamped with the
    /// current epoch.
    pub fn insert(&mut self, sig: PlanSignature, schedule: Arc<TreeScheduleResult>) {
        self.entries.insert(sig, (schedule, self.epoch));
    }

    /// Counts a plan computed while the cache is disabled, so the re-plan
    /// metric stays meaningful either way.
    pub fn count_uncached_plan(&mut self) {
        self.stats.misses += 1;
    }

    /// Environment changed (site crash/restore/rate change): advance the
    /// epoch and drop every entry, so no schedule planned under the old
    /// environment is ever served again.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.stats.epoch_bumps += 1;
        self.entries.clear();
    }
}

/// A canonical bit-level digest of a schedule, used by the shadow-compute
/// verification to prove a cache hit byte-identical to a fresh plan. Walks
/// every numeric field: phase levels and makespans, operator degrees,
/// per-clone work-vector components, clone homes, and the total response
/// time — all floats as exact bit patterns.
pub fn schedule_digest(schedule: &TreeScheduleResult) -> Vec<u64> {
    let mut w = Vec::new();
    w.push(schedule.response_time.to_bits());
    w.push(schedule.phases.len() as u64);
    for phase in &schedule.phases {
        w.push(phase.level as u64);
        w.push(phase.makespan.to_bits());
        w.push(phase.schedule.ops.len() as u64);
        for (op, homes) in phase
            .schedule
            .ops
            .iter()
            .zip(&phase.schedule.assignment.homes)
        {
            w.push(op.spec.id.0 as u64);
            w.push(op.degree as u64);
            for clone in &op.clones {
                for i in 0..clone.dim() {
                    w.push(clone[i].to_bits());
                }
            }
            w.extend(homes.iter().map(|s| s.0 as u64));
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};
    use mrs_core::resource::SiteId;
    use mrs_core::tasks::{HomeBinding, TaskGraph};
    use mrs_core::vector::WorkVector;

    fn problem(cpu: f64) -> TreeProblem {
        TreeProblem {
            ops: vec![OperatorSpec::floating(
                OperatorId(0),
                OperatorKind::Scan,
                WorkVector::from_slice(&[cpu, 1.0, 0.0]),
                64.0,
            )],
            tasks: TaskGraph::single_task(vec![OperatorId(0)]),
            bindings: vec![],
        }
    }

    #[test]
    fn identical_problems_share_a_signature() {
        assert_eq!(
            PlanSignature::of(&problem(3.0), 0.7),
            PlanSignature::of(&problem(3.0), 0.7)
        );
    }

    #[test]
    fn any_input_perturbation_changes_the_signature() {
        let base = PlanSignature::of(&problem(3.0), 0.7);
        // Work vector off by one ulp.
        assert_ne!(
            base,
            PlanSignature::of(&problem(f64::from_bits(3.0f64.to_bits() + 1)), 0.7)
        );
        // Different granularity.
        assert_ne!(base, PlanSignature::of(&problem(3.0), 0.71));
        // Different kind.
        let mut p = problem(3.0);
        p.ops[0].kind = OperatorKind::Sort;
        assert_ne!(base, PlanSignature::of(&p, 0.7));
        // Rooted placement.
        let mut p = problem(3.0);
        p.ops[0].placement = Placement::Rooted(vec![SiteId(1)]);
        assert_ne!(base, PlanSignature::of(&p, 0.7));
        // Extra binding.
        let mut p = problem(3.0);
        p.bindings.push(HomeBinding {
            dependent: OperatorId(0),
            source: OperatorId(0),
        });
        assert_ne!(base, PlanSignature::of(&p, 0.7));
    }

    #[test]
    fn cache_counts_hits_misses_and_bumps() {
        let mut cache = ScheduleCache::new();
        let sig = PlanSignature::of(&problem(2.0), 0.7);
        assert!(cache.get(&sig).is_none());
        let sched = Arc::new(TreeScheduleResult {
            phases: vec![],
            response_time: 1.5,
        });
        cache.insert(sig.clone(), Arc::clone(&sched));
        assert_eq!(cache.len(), 1);
        let (hit, inserted) = cache.get(&sig).expect("second lookup hits");
        assert!(Arc::ptr_eq(&hit, &sched));
        assert_eq!(inserted, cache.epoch(), "hit is epoch-coherent");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                epoch_bumps: 0
            }
        );
        cache.bump_epoch();
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 1);
        assert!(cache.get(&sig).is_none(), "bump clears entries");
        assert_eq!(cache.stats().epoch_bumps, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            epoch_bumps: 0,
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn digest_reflects_every_schedule_field() {
        let a = TreeScheduleResult {
            phases: vec![],
            response_time: 2.0,
        };
        let mut b = a.clone();
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        b.response_time = f64::from_bits(2.0f64.to_bits() + 1);
        assert_ne!(schedule_digest(&a), schedule_digest(&b));
    }
}
