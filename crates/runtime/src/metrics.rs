//! Aggregated metrics of one runtime run: per-query latency statistics,
//! per-site realized utilization (from the simulator's busy-time
//! integrals, not the ledger's committed view), queue-depth trace,
//! throughput, and — under fault injection — the structured fault trace
//! (site crashes, lost clones, re-packs, retries, aborts, sheds).

use crate::cache::CacheStats;
use crate::job::{QueryId, QueryOutcome, QueryRecord, ShedReason};
use crate::runtime::RuntimeError;
use crate::trace::AuditEvent;
use mrs_sim::engine::UtilSample;

/// One entry of the run's fault/recovery event trace. Records derive
/// `PartialEq` so determinism tests can compare whole traces.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRecord {
    /// Virtual time of the event.
    pub time: f64,
    /// What happened.
    pub kind: FaultRecordKind,
}

/// The kinds of fault/recovery events a run can log.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultRecordKind {
    /// A site crashed, evicting `clones_lost` resident clones.
    SiteDown {
        /// The crashed site index.
        site: usize,
        /// Clones evicted by the crash.
        clones_lost: usize,
    },
    /// A crashed site came back, empty.
    SiteUp {
        /// The recovered site index.
        site: usize,
    },
    /// One clone of `query` was lost to a crash (or displaced from a
    /// dead site at dispatch).
    CloneLost {
        /// The owning query.
        query: QueryId,
    },
    /// Lost work of `query` was re-packed onto `clones` new clones on
    /// the surviving sites.
    Repacked {
        /// The recovered query.
        query: QueryId,
        /// Number of replacement clones dispatched.
        clones: usize,
    },
    /// Recovery could not place `query`'s lost work; a retry is
    /// scheduled.
    RetryScheduled {
        /// The waiting query.
        query: QueryId,
        /// Which retry attempt this will be (1-based).
        attempt: u32,
        /// Virtual time the retry fires.
        at: f64,
    },
    /// `query` was aborted (deadline or retries exhausted).
    Aborted {
        /// The aborted query.
        query: QueryId,
    },
    /// `query` was shed at arrival.
    Shed {
        /// The shed query.
        query: QueryId,
        /// Which admission gate fired.
        reason: ShedReason,
    },
}

/// Everything measured over one [`Runtime`](crate::runtime::Runtime) run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Label of the admission policy that produced this run.
    pub policy: &'static str,
    /// Virtual time of the last event (the run's makespan).
    pub horizon: f64,
    /// Per-query lifecycle records, indexed by query id.
    pub queries: Vec<QueryRecord>,
    /// `site_busy[j][i]` = total busy time of resource `i` at site `j`
    /// (the simulator's integral of realized demand).
    pub site_busy: Vec<Vec<f64>>,
    /// `(time, queue depth)` after each event.
    pub depth_trace: Vec<(f64, usize)>,
    /// Time-ordered fault/recovery trace (empty for a fault-free run).
    pub faults: Vec<FaultRecord>,
    /// Schedule-cache counters: admission hits, fresh plans computed
    /// (re-plan count), and epoch bumps. All-zero with no admissions.
    pub cache: CacheStats,
    /// Structured audit trace (see [`crate::trace`]): phase dispatches,
    /// re-pack conservation quantities, cache epochs. Checked end-to-end
    /// by `mrs-audit`'s `audit_run`.
    pub trace: Vec<AuditEvent>,
    /// `site_peak_util[j][i]` = peak normalized utilization of resource
    /// `i` at site `j` over the run (realized demand over effective
    /// capacity; feasible fluid sharing keeps this ≤ 1).
    pub site_peak_util: Vec<Vec<f64>>,
    /// `site_util_integral[j][i]` = exact integral over virtual time of
    /// the normalized utilization of resource `i` at site `j`, so
    /// `site_util_integral[j][i] / horizon` is the site's *average*
    /// utilization. Always recorded; lets `mrs-audit` bound average (not
    /// just peak) over-commitment.
    pub site_util_integral: Vec<Vec<f64>>,
    /// Per-site per-step utilization time series (piecewise-constant
    /// intervals), recorded only when
    /// [`RuntimeConfig::util_series`](crate::runtime::RuntimeConfig) is
    /// set; empty inner vectors otherwise. The integral of site `j`'s
    /// series equals `site_util_integral[j]` exactly.
    pub site_util_series: Vec<Vec<UtilSample>>,
}

impl RunSummary {
    pub(crate) fn new(
        policy: &'static str,
        horizon: f64,
        queries: Vec<QueryRecord>,
        site_busy: Vec<Vec<f64>>,
        depth_trace: Vec<(f64, usize)>,
        faults: Vec<FaultRecord>,
    ) -> Self {
        RunSummary {
            policy,
            horizon,
            queries,
            site_busy,
            depth_trace,
            faults,
            cache: CacheStats::default(),
            trace: Vec::new(),
            site_peak_util: Vec::new(),
            site_util_integral: Vec::new(),
            site_util_series: Vec::new(),
        }
    }

    /// Average (time-mean) normalized utilization of resource `i` at
    /// site `j`: the exact utilization integral over the horizon. Zero
    /// for a zero-length run.
    pub fn avg_site_utilization(&self, site: usize, resource: usize) -> f64 {
        if self.horizon > 0.0 {
            self.site_util_integral[site][resource] / self.horizon
        } else {
            0.0
        }
    }

    /// Fraction of admissions whose schedule came from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Number of fresh `tree_schedule` computations (admissions not
    /// served from the cache).
    pub fn plans_computed(&self) -> u64 {
        self.cache.misses
    }

    /// Task pipelines actually packed over the run — the planning-work
    /// metric the MQO experiments compare across shared and unshared
    /// modes (unshared plans charge every task of every computed plan;
    /// spliced subtrees charge nothing).
    pub fn tasks_planned(&self) -> u64 {
        self.cache.tasks_planned
    }

    /// Number of queries that finished.
    pub fn completed(&self) -> usize {
        self.queries.iter().filter(|q| q.finish.is_some()).count()
    }

    /// Number of queries aborted (deadline or exhausted recovery).
    pub fn aborted(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| matches!(q.outcome, Some(QueryOutcome::Aborted { .. })))
            .count()
    }

    /// Number of queries shed at arrival (any gate).
    pub fn shed(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| matches!(q.outcome, Some(QueryOutcome::Shed { .. })))
            .count()
    }

    /// Number of queries shed by the given gate.
    pub fn shed_for(&self, reason: ShedReason) -> usize {
        self.queries
            .iter()
            .filter(|q| q.outcome == Some(QueryOutcome::Shed { reason }))
            .count()
    }

    /// The per-query failures of this run as typed errors:
    /// [`RuntimeError::Aborted`] / [`RuntimeError::Shed`], in query-id
    /// order. Empty when every query completed.
    pub fn failures(&self) -> Vec<RuntimeError> {
        self.queries
            .iter()
            .filter_map(|q| match &q.outcome {
                Some(QueryOutcome::Aborted { reason }) => Some(RuntimeError::Aborted {
                    query: q.id,
                    reason: reason.clone(),
                }),
                Some(QueryOutcome::Shed { reason }) => Some(RuntimeError::Shed {
                    query: q.id,
                    reason: *reason,
                }),
                _ => None,
            })
            .collect()
    }

    /// Number of site-crash events observed.
    pub fn sites_failed(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.kind, FaultRecordKind::SiteDown { .. }))
            .count()
    }

    /// Total clones lost to crashes and dead-site displacement.
    pub fn clones_lost(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.kind, FaultRecordKind::CloneLost { .. }))
            .count()
    }

    /// Number of successful lost-work re-packs.
    pub fn repacks(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.kind, FaultRecordKind::Repacked { .. }))
            .count()
    }

    /// Completed queries per unit virtual time.
    pub fn throughput(&self) -> f64 {
        if self.horizon > 0.0 {
            self.completed() as f64 / self.horizon
        } else {
            0.0
        }
    }

    /// Realized utilization of resource `i` at site `j`:
    /// `busy[j][i] / horizon`.
    pub fn utilization(&self, site: usize, resource: usize) -> f64 {
        if self.horizon > 0.0 {
            self.site_busy[site][resource] / self.horizon
        } else {
            0.0
        }
    }

    /// Mean utilization of resource `i` across all sites.
    pub fn avg_utilization(&self, resource: usize) -> f64 {
        if self.site_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.site_busy.len())
            .map(|j| self.utilization(j, resource))
            .sum();
        total / self.site_busy.len() as f64
    }

    /// Mean time spent in the admission queue (admitted queries).
    pub fn mean_wait(&self) -> f64 {
        mean(self.queries.iter().filter_map(QueryRecord::wait))
    }

    /// Mean arrival-to-finish latency (completed queries).
    pub fn mean_latency(&self) -> f64 {
        mean(self.queries.iter().filter_map(QueryRecord::latency))
    }

    /// Median arrival-to-finish latency (completed queries).
    pub fn p50_latency(&self) -> f64 {
        percentile(self.queries.iter().filter_map(QueryRecord::latency), 0.50)
    }

    /// 95th-percentile arrival-to-finish latency (completed queries).
    pub fn p95_latency(&self) -> f64 {
        percentile(self.queries.iter().filter_map(QueryRecord::latency), 0.95)
    }

    /// 99th-percentile arrival-to-finish latency (completed queries).
    pub fn p99_latency(&self) -> f64 {
        percentile(self.queries.iter().filter_map(QueryRecord::latency), 0.99)
    }

    /// Arrival-to-finish latency at an arbitrary quantile `p ∈ (0, 1]`
    /// (completed queries; ceiling-rank convention, `0.0` with none).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(self.queries.iter().filter_map(QueryRecord::latency), p)
    }

    /// Mean slowdown relative to standalone schedules (completed queries
    /// with a positive standalone response).
    pub fn mean_slowdown(&self) -> f64 {
        mean(self.queries.iter().filter_map(QueryRecord::slowdown))
    }

    /// Deepest the admission queue ever got.
    pub fn max_queue_depth(&self) -> usize {
        self.depth_trace.iter().map(|(_, d)| *d).max().unwrap_or(0)
    }

    /// FNV-1a digest over *every* field of the summary (floats by their
    /// exact bit patterns). Two summaries digest equal iff the runs were
    /// byte-identical — this is what the shard-invariance harness
    /// compares across `--shards` values.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(self.policy);
        h.f64(self.horizon);
        h.usize(self.queries.len());
        for q in &self.queries {
            h.usize(q.id.0);
            h.usize(q.client);
            h.f64(q.volume);
            h.f64(q.arrival);
            h.opt_f64(q.start);
            h.opt_f64(q.finish);
            h.usize(q.phases);
            h.f64(q.standalone_response);
            match &q.outcome {
                None => h.u8(0),
                Some(QueryOutcome::Completed) => h.u8(1),
                Some(QueryOutcome::Aborted { reason }) => {
                    h.u8(2);
                    h.str(reason);
                }
                Some(QueryOutcome::Shed { reason }) => {
                    h.u8(3);
                    h.u8(reason.discriminant());
                }
            }
        }
        h.mat(&self.site_busy);
        h.usize(self.depth_trace.len());
        for (t, d) in &self.depth_trace {
            h.f64(*t);
            h.usize(*d);
        }
        h.usize(self.faults.len());
        for f in &self.faults {
            h.f64(f.time);
            match &f.kind {
                FaultRecordKind::SiteDown { site, clones_lost } => {
                    h.u8(0);
                    h.usize(*site);
                    h.usize(*clones_lost);
                }
                FaultRecordKind::SiteUp { site } => {
                    h.u8(1);
                    h.usize(*site);
                }
                FaultRecordKind::CloneLost { query } => {
                    h.u8(2);
                    h.usize(query.0);
                }
                FaultRecordKind::Repacked { query, clones } => {
                    h.u8(3);
                    h.usize(query.0);
                    h.usize(*clones);
                }
                FaultRecordKind::RetryScheduled { query, attempt, at } => {
                    h.u8(4);
                    h.usize(query.0);
                    h.u64(u64::from(*attempt));
                    h.f64(*at);
                }
                FaultRecordKind::Aborted { query } => {
                    h.u8(5);
                    h.usize(query.0);
                }
                FaultRecordKind::Shed { query, reason } => {
                    h.u8(6);
                    h.usize(query.0);
                    h.u8(reason.discriminant());
                }
            }
        }
        h.u64(self.cache.hits);
        h.u64(self.cache.misses);
        h.u64(self.cache.epoch_bumps);
        h.usize(self.trace.len());
        for ev in &self.trace {
            match ev {
                AuditEvent::PhaseDispatched { time, query, phase } => {
                    h.u8(0);
                    h.f64(*time);
                    h.usize(query.0);
                    h.usize(*phase);
                }
                AuditEvent::Repacked {
                    time,
                    query,
                    lost_total,
                    expected_total,
                    placed_total,
                } => {
                    h.u8(1);
                    h.f64(*time);
                    h.usize(query.0);
                    h.f64(*lost_total);
                    h.f64(*expected_total);
                    h.f64(*placed_total);
                }
                AuditEvent::CacheInsert { time, query, epoch } => {
                    h.u8(2);
                    h.f64(*time);
                    h.usize(query.0);
                    h.u64(*epoch);
                }
                AuditEvent::CacheHit {
                    time,
                    query,
                    insert_epoch,
                    hit_epoch,
                    touched,
                } => {
                    h.u8(3);
                    h.f64(*time);
                    h.usize(query.0);
                    h.u64(*insert_epoch);
                    h.u64(*hit_epoch);
                    h.usize(touched.len());
                    for &s in touched {
                        h.usize(s);
                    }
                }
                AuditEvent::EpochBump { time, epoch, site } => {
                    h.u8(4);
                    h.f64(*time);
                    h.u64(*epoch);
                    h.usize(*site);
                }
                AuditEvent::FragmentInsert {
                    time,
                    query,
                    epoch,
                    sig_hash,
                    digest,
                } => {
                    h.u8(6);
                    h.f64(*time);
                    h.usize(query.0);
                    h.u64(*epoch);
                    h.u64(*sig_hash);
                    h.u64(*digest);
                }
                AuditEvent::FragmentSpliced {
                    time,
                    query,
                    insert_epoch,
                    hit_epoch,
                    touched,
                    sig_hash,
                    digest,
                } => {
                    h.u8(7);
                    h.f64(*time);
                    h.usize(query.0);
                    h.u64(*insert_epoch);
                    h.u64(*hit_epoch);
                    h.usize(touched.len());
                    for &s in touched {
                        h.usize(s);
                    }
                    h.u64(*sig_hash);
                    h.u64(*digest);
                }
                AuditEvent::ControlDecision {
                    time,
                    action,
                    level,
                    gate,
                    sample,
                } => {
                    h.u8(5);
                    h.f64(*time);
                    h.u8(action.discriminant());
                    h.u64(u64::from(*level));
                    h.u8(u8::from(*gate));
                    h.f64(sample.time);
                    h.usize(sample.queue_depth);
                    h.usize(sample.retries);
                    h.usize(sample.alive);
                    h.f64(sample.avg_load);
                }
            }
        }
        h.mat(&self.site_peak_util);
        h.mat(&self.site_util_integral);
        h.usize(self.site_util_series.len());
        for series in &self.site_util_series {
            h.usize(series.len());
            for s in series {
                h.f64(s.start);
                h.f64(s.len);
                for u in &s.util {
                    h.f64(*u);
                }
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a accumulator for [`RunSummary::digest`]. Not a general
/// hasher: field framing (length prefixes, enum discriminants) is the
/// caller's job.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.bytes() {
            self.u8(b);
        }
    }

    fn mat(&mut self, m: &[Vec<f64>]) {
        self.usize(m.len());
        for row in m {
            self.usize(row.len());
            for v in row {
                self.f64(*v);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

fn percentile(values: impl Iterator<Item = f64>, p: f64) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let rank = ((p * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::QueryId;

    fn record(arrival: f64, start: f64, finish: f64) -> QueryRecord {
        let mut r = QueryRecord::new(QueryId(0), 0, 1.0, arrival);
        r.start = Some(start);
        r.finish = Some(finish);
        r.standalone_response = finish - start;
        r.outcome = Some(QueryOutcome::Completed);
        r
    }

    fn summary() -> RunSummary {
        RunSummary::new(
            "fcfs",
            10.0,
            vec![record(0.0, 0.0, 4.0), record(0.0, 2.0, 10.0)],
            vec![vec![5.0, 2.5, 0.0], vec![10.0, 0.0, 0.0]],
            vec![(0.0, 2), (4.0, 0)],
            Vec::new(),
        )
    }

    #[test]
    fn aggregates() {
        let s = summary();
        assert_eq!(s.completed(), 2);
        assert_eq!(s.aborted(), 0);
        assert_eq!(s.shed(), 0);
        assert!(s.failures().is_empty());
        assert!((s.throughput() - 0.2).abs() < 1e-12);
        assert!((s.utilization(0, 0) - 0.5).abs() < 1e-12);
        assert!((s.avg_utilization(0) - 0.75).abs() < 1e-12);
        assert!((s.mean_wait() - 1.0).abs() < 1e-12);
        assert!((s.mean_latency() - 7.0).abs() < 1e-12);
        assert!((s.p95_latency() - 10.0).abs() < 1e-12);
        assert!((s.mean_slowdown() - 1.0).abs() < 1e-12);
        assert_eq!(s.max_queue_depth(), 2);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = RunSummary::new("fcfs", 0.0, vec![], vec![], vec![], vec![]);
        assert_eq!(s.completed(), 0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.p95_latency(), 0.0);
        assert_eq!(s.max_queue_depth(), 0);
        assert_eq!(s.sites_failed(), 0);
        assert_eq!(s.clones_lost(), 0);
        assert_eq!(s.repacks(), 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.plans_computed(), 0);
    }

    #[test]
    fn cache_stats_surface_through_summary() {
        let mut s = summary();
        s.cache = CacheStats {
            hits: 6,
            misses: 2,
            epoch_bumps: 1,
            ..CacheStats::default()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.plans_computed(), 2);
    }

    #[test]
    fn outcome_counters_and_failures() {
        let mut aborted = QueryRecord::new(QueryId(1), 0, 1.0, 0.0);
        aborted.outcome = Some(QueryOutcome::Aborted {
            reason: "deadline".to_owned(),
        });
        let mut shed = QueryRecord::new(QueryId(2), 0, 1.0, 0.0);
        shed.outcome = Some(QueryOutcome::Shed {
            reason: ShedReason::AliveCount,
        });
        let s = RunSummary::new(
            "fcfs",
            5.0,
            vec![record(0.0, 0.0, 2.0), aborted, shed],
            vec![],
            vec![],
            vec![
                FaultRecord {
                    time: 1.0,
                    kind: FaultRecordKind::SiteDown {
                        site: 0,
                        clones_lost: 2,
                    },
                },
                FaultRecord {
                    time: 1.0,
                    kind: FaultRecordKind::CloneLost { query: QueryId(1) },
                },
                FaultRecord {
                    time: 1.5,
                    kind: FaultRecordKind::Repacked {
                        query: QueryId(1),
                        clones: 3,
                    },
                },
                FaultRecord {
                    time: 2.0,
                    kind: FaultRecordKind::SiteUp { site: 0 },
                },
            ],
        );
        assert_eq!(s.completed(), 1);
        assert_eq!(s.aborted(), 1);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.shed_for(ShedReason::AliveCount), 1);
        assert_eq!(s.shed_for(ShedReason::MeanLoad), 0);
        assert_eq!(s.sites_failed(), 1);
        assert_eq!(s.clones_lost(), 1);
        assert_eq!(s.repacks(), 1);
        let failures = s.failures();
        assert_eq!(failures.len(), 2);
        assert!(
            matches!(&failures[0], RuntimeError::Aborted { query, reason }
                if *query == QueryId(1) && reason == "deadline")
        );
        assert!(matches!(&failures[1], RuntimeError::Shed { query, reason }
            if *query == QueryId(2) && *reason == ShedReason::AliveCount));
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let a = summary();
        assert_eq!(a.digest(), summary().digest(), "same data, same digest");
        let mut horizon = summary();
        horizon.horizon += 1.0;
        assert_ne!(a.digest(), horizon.digest());
        let mut cache = summary();
        cache.cache.hits = 1;
        assert_ne!(a.digest(), cache.digest());
        let mut util = summary();
        util.site_util_integral = vec![vec![1.0]];
        assert_ne!(a.digest(), util.digest());
        let mut series = summary();
        series.site_util_series = vec![vec![UtilSample {
            start: 0.0,
            len: 1.0,
            util: vec![0.5],
        }]];
        assert_ne!(a.digest(), series.digest());
        let mut outcome = summary();
        outcome.queries[0].outcome = Some(QueryOutcome::Shed {
            reason: ShedReason::AliveCount,
        });
        assert_ne!(a.digest(), outcome.digest());
        // The shed *reason* is part of the digest too.
        let mut other_reason = summary();
        other_reason.queries[0].outcome = Some(QueryOutcome::Shed {
            reason: ShedReason::MeanLoad,
        });
        assert_ne!(outcome.digest(), other_reason.digest());
    }

    #[test]
    fn avg_site_utilization_reads_the_integral() {
        let mut s = summary();
        s.site_util_integral = vec![vec![5.0, 2.5, 0.0], vec![10.0, 0.0, 0.0]];
        assert!((s.avg_site_utilization(0, 0) - 0.5).abs() < 1e-12);
        assert!((s.avg_site_utilization(1, 0) - 1.0).abs() < 1e-12);
        s.horizon = 0.0;
        assert_eq!(s.avg_site_utilization(0, 0), 0.0);
    }

    #[test]
    fn percentile_picks_ceiling_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(v.iter().copied(), 0.5), 2.0);
        assert_eq!(percentile(v.iter().copied(), 0.95), 4.0);
        assert_eq!(percentile(v.iter().copied(), 0.25), 1.0);
    }

    #[test]
    fn latency_quantiles_match_a_hand_checked_stream() {
        // Twenty completions with latencies 1..=20 (arrival 0, finish k),
        // submitted out of order to prove the quantile sorts. Ceiling
        // rank: p50 -> rank 10 (value 10), p95 -> rank 19 (value 19),
        // p99 -> rank ceil(19.8) = 20 (value 20).
        let latencies = [
            13.0, 2.0, 20.0, 7.0, 11.0, 4.0, 18.0, 1.0, 9.0, 15.0, 6.0, 19.0, 3.0, 12.0, 8.0, 16.0,
            5.0, 14.0, 10.0, 17.0,
        ];
        let queries: Vec<QueryRecord> = latencies
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut r = QueryRecord::new(QueryId(i), 0, 1.0, 0.0);
                r.start = Some(0.0);
                r.finish = Some(*l);
                r.standalone_response = *l;
                r.outcome = Some(QueryOutcome::Completed);
                r
            })
            .collect();
        let depth_trace = vec![(0.0, 3), (1.0, 7), (2.0, 5), (3.0, 0)];
        let s = RunSummary::new("fcfs", 20.0, queries, vec![], depth_trace, vec![]);
        assert_eq!(s.p50_latency(), 10.0);
        assert_eq!(s.p95_latency(), 19.0);
        assert_eq!(s.p99_latency(), 20.0);
        assert_eq!(s.latency_percentile(0.05), 1.0);
        assert_eq!(s.latency_percentile(1.0), 20.0);
        assert_eq!(s.max_queue_depth(), 7);
        // An incomplete query contributes no latency: quantiles are over
        // completions only.
        let mut with_queued = s.clone();
        with_queued
            .queries
            .push(QueryRecord::new(QueryId(20), 0, 1.0, 0.0));
        assert_eq!(with_queued.p99_latency(), 20.0);
    }
}
