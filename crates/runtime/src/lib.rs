//! # mrs-runtime — online multi-query scheduling
//!
//! The paper schedules one query at a time; this crate grows that into an
//! *online* runtime serving a stream of queries:
//!
//! | module | contents |
//! |---|---|
//! | [`job`] | query identity, work volume, lifecycle records |
//! | [`admission`] | the wait queue and its policies (FCFS, smallest-volume-first, round-robin fair) |
//! | [`ledger`] | per-site residual-capacity bookkeeping (re-exported from `mrs-shardexec`, which slices it per shard) |
//! | [`runtime`] | the deterministic event-driven dispatcher (single-threaded or sharded via `mrs-shardexec`) |
//! | [`cache`] | the plan-signature schedule cache (template memoization, epoch invalidation) |
//! | [`recovery`] | failure-aware rescheduling: re-packing lost work onto survivors |
//! | [`control`] | adaptive overload control: the parallelism governor and backpressure admission gate |
//! | [`metrics`] | per-query latency and quantiles, per-site utilization, throughput, fault trace, cache stats |
//!
//! Each admitted query is scheduled with the paper's TreeSchedule and its
//! synchronized phases are dispatched *incrementally* onto shared fluid
//! sites ([`mrs_sim::engine::SiteSim`]): a phase's clones are inserted at
//! the current virtual time, the event loop advances to the next clone
//! completion or arrival, and a query's next phase starts only once the
//! previous one drains. Concurrent queries therefore time-share sites
//! under the simulator's discipline, and a query running alone reproduces
//! its standalone TreeSchedule response time exactly (the cross-crate
//! consistency test in `tests/runtime_stream.rs` checks this).
//!
//! ```
//! use mrs_runtime::prelude::*;
//! use mrs_core::prelude::*;
//!
//! let sys = SystemSpec::homogeneous(8);
//! let comm = CommModel::paper_defaults();
//! let model = OverlapModel::new(0.5).unwrap();
//! let mut rt = Runtime::new(sys, comm, model, RuntimeConfig::default());
//!
//! let op = OperatorSpec::floating(
//!     OperatorId(0), OperatorKind::Scan,
//!     WorkVector::from_slice(&[4.0, 2.0, 0.0]), 1_000_000.0,
//! );
//! let problem = TreeProblem {
//!     ops: vec![op],
//!     tasks: TaskGraph::single_task(vec![OperatorId(0)]),
//!     bindings: vec![],
//! };
//! rt.submit_at(0.0, 0, problem);
//! let summary = rt.run_to_completion().unwrap();
//! assert_eq!(summary.completed(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod control;
pub mod job;
pub use mrs_shardexec::ledger;
pub mod metrics;
pub mod recovery;
pub mod runtime;
pub mod trace;

/// One-stop imports.
pub mod prelude {
    pub use crate::admission::{AdmissionPolicy, AdmissionQueue};
    pub use crate::cache::{schedule_digest, CacheStats, PlanSignature, ScheduleCache};
    pub use crate::control::{
        ControlAction, ControlDecision, Controller, ControllerConfig, PressureSample,
    };
    pub use crate::job::{work_volume, QueryId, QueryOutcome, QueryRecord, ShedReason};
    pub use crate::ledger::SiteLedger;
    pub use crate::metrics::{FaultRecord, FaultRecordKind, RunSummary};
    pub use crate::recovery::RecoveryConfig;
    pub use crate::runtime::{Runtime, RuntimeConfig, RuntimeError};
    pub use crate::trace::{
        audit_cache_hit_coherent, audit_control_transition, audit_placements_valid,
        audit_repack_conserves, AuditEvent,
    };
}
