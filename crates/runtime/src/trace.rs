//! Structured audit trace: cheap always-on events the runtime records at
//! its invariant-bearing sites (phase dispatch, recovery re-pack, cache
//! hit/insert, epoch bump), plus the tiny predicates the runtime's
//! `debug_assert!` hooks evaluate inline.
//!
//! The trace exists so that `mrs-audit` (which depends on this crate, not
//! the other way round — no dependency cycle) can *re-check* conservation
//! and coherence after the fact from a [`crate::metrics::RunSummary`]
//! alone: the events carry the aggregate quantities (lost work, expected
//! re-packed work including the EA1 startup surcharge, epochs) that the
//! coarser [`crate::metrics::FaultRecord`] stream does not.
//!
//! Events are plain values recorded in simulation-event order; the
//! sequence is deterministic for a fixed seed and identical across
//! `--jobs` values (it lives entirely inside one runtime's event loop).

use crate::control::{ControlAction, PressureSample};
use crate::job::QueryId;
use mrs_core::resource::SiteId;
use mrs_core::vector::WorkVector;

/// One entry of the runtime's audit trace. All times are virtual.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditEvent {
    /// A phase of `query` was dispatched (its clone placements were
    /// handed to the site simulators). `phase` is the 0-based phase
    /// index; per query the recorded indices must be strictly
    /// increasing.
    PhaseDispatched {
        /// Virtual dispatch time.
        time: f64,
        /// The owning query.
        query: QueryId,
        /// 0-based phase index within the query's TreeSchedule.
        phase: usize,
    },
    /// Lost work of `query` was successfully re-packed onto survivors.
    ///
    /// Conservation invariant: `placed_total` must equal
    /// `expected_total`, which is the lost work inflated by the rebuild
    /// surcharge plus one EA1 startup cost `α` per degree-1 replacement
    /// clone (see [`crate::recovery::replan_lost`]).
    Repacked {
        /// Virtual re-pack time.
        time: f64,
        /// The recovering query.
        query: QueryId,
        /// Total lost work (already scaled by the unfinished fraction).
        lost_total: f64,
        /// Lost work + rebuild surcharge + per-clone startup `α`.
        expected_total: f64,
        /// Total work actually placed onto alive sites.
        placed_total: f64,
    },
    /// A fresh admission plan was memoized under the current epoch.
    CacheInsert {
        /// Virtual insert time.
        time: f64,
        /// The query whose plan was computed.
        query: QueryId,
        /// Cache epoch at insert time.
        epoch: u64,
    },
    /// An admission plan was served from the schedule cache.
    ///
    /// Coherence invariant (see [`audit_cache_hit_coherent`]): the entry
    /// must have been inserted no later than the hit (`insert_epoch <=
    /// hit_epoch`), `hit_epoch` must be the epoch actually current at
    /// hit time (replayable from the [`AuditEvent::EpochBump`] stream),
    /// and no site in the entry's footprint may have changed after
    /// insertion — a plan is only served while its own environment is
    /// unshifted.
    CacheHit {
        /// Virtual hit time.
        time: f64,
        /// The query served from the cache.
        query: QueryId,
        /// Epoch the entry was inserted under.
        insert_epoch: u64,
        /// Epoch current at hit time.
        hit_epoch: u64,
        /// The entry's site footprint (sorted, deduplicated homes).
        touched: Vec<usize>,
    },
    /// The cache epoch advanced (a site crashed or recovered).
    EpochBump {
        /// Virtual time of the environment change.
        time: f64,
        /// The new epoch.
        epoch: u64,
        /// The site whose availability changed.
        site: usize,
    },
    /// A freshly computed subtree fragment was memoized by the shared
    /// planner (plan sharing enabled only). `sig_hash` is a 64-bit fold
    /// of the subtree's canonical signature and `digest` the bit-level
    /// digest of the memoized fragment
    /// ([`crate::cache::fragment_digest`]); together they let the audit
    /// replay splice coherence without shipping the fragment itself.
    FragmentInsert {
        /// Virtual insert time.
        time: f64,
        /// The query whose planning produced the fragment.
        query: QueryId,
        /// Cache epoch at insert time.
        epoch: u64,
        /// Fold of the subtree's canonical signature.
        sig_hash: u64,
        /// Bit-level digest of the memoized fragment.
        digest: u64,
    },
    /// A cached subtree fragment was spliced into an admission plan.
    ///
    /// Coherence invariants (see the `runtime-mqo` audit family): the
    /// epoch/footprint discipline of [`AuditEvent::CacheHit`] applies
    /// unchanged ([`audit_cache_hit_coherent`]), and `digest` must equal
    /// the digest recorded by the [`AuditEvent::FragmentInsert`] for the
    /// same `sig_hash` — the spliced bytes are exactly the memoized
    /// bytes, which the shared planner's determinism ties back to a
    /// fresh computation over the subtree problem.
    FragmentSpliced {
        /// Virtual splice time.
        time: f64,
        /// The query receiving the fragment.
        query: QueryId,
        /// Epoch the fragment was inserted under.
        insert_epoch: u64,
        /// Epoch current at splice time.
        hit_epoch: u64,
        /// The fragment's site footprint (sorted, deduplicated).
        touched: Vec<usize>,
        /// Fold of the subtree's canonical signature.
        sig_hash: u64,
        /// Digest the memo recorded for this fragment at insertion.
        digest: u64,
    },
    /// The overload controller changed state (see [`crate::control`]).
    ///
    /// Replay invariants (checked by `mrs-audit`'s controller-coherence
    /// family): starting from level 0 / gate released, each decision
    /// moves exactly one step consistent with its `action`
    /// ([`audit_control_transition`]), and the recorded signal snapshot
    /// justifies the action under the run's thresholds
    /// ([`ControllerConfig::justifies`](crate::control::ControllerConfig)).
    /// Never recorded while the controller is disabled.
    ControlDecision {
        /// Virtual time of the observation (equals `sample.time`).
        time: f64,
        /// What changed.
        action: ControlAction,
        /// Governor level after the decision.
        level: u32,
        /// Gate state after the decision.
        gate: bool,
        /// The pressure snapshot that justified the decision.
        sample: PressureSample,
    },
}

impl AuditEvent {
    /// The event's virtual timestamp.
    pub fn time(&self) -> f64 {
        match self {
            AuditEvent::PhaseDispatched { time, .. }
            | AuditEvent::Repacked { time, .. }
            | AuditEvent::CacheInsert { time, .. }
            | AuditEvent::CacheHit { time, .. }
            | AuditEvent::EpochBump { time, .. }
            | AuditEvent::FragmentInsert { time, .. }
            | AuditEvent::FragmentSpliced { time, .. }
            | AuditEvent::ControlDecision { time, .. } => *time,
        }
    }
}

/// Relative tolerance for work-conservation comparisons. Re-pack sums
/// the same float quantities in a different order than the expectation
/// (packer order vs. lost-clone order), so bit equality is too strict;
/// anything beyond accumulated rounding noise is a real leak.
pub const CONSERVATION_REL_TOL: f64 = 1e-9;

/// True when the re-packed work equals the expected (surcharged) lost
/// work within [`CONSERVATION_REL_TOL`].
pub fn audit_repack_conserves(expected_total: f64, placed_total: f64) -> bool {
    let scale = expected_total.abs().max(placed_total.abs()).max(1.0);
    (expected_total - placed_total).abs() <= CONSERVATION_REL_TOL * scale
}

/// True when a cache hit is coherent under footprint invalidation:
///
/// * the entry predates the hit (`insert_epoch <= hit_epoch`);
/// * `hit_epoch` equals `current_epoch`, the epoch the auditor replayed
///   from the `EpochBump` stream up to the hit;
/// * no site in the entry's footprint changed after insertion —
///   `site_last_bump(s)` is the replayed epoch of site `s`'s last
///   availability change (0 if it never changed).
pub fn audit_cache_hit_coherent(
    insert_epoch: u64,
    hit_epoch: u64,
    current_epoch: u64,
    touched: &[usize],
    site_last_bump: impl Fn(usize) -> u64,
) -> bool {
    insert_epoch <= hit_epoch
        && hit_epoch == current_epoch
        && touched.iter().all(|&s| site_last_bump(s) <= insert_epoch)
}

/// True when one controller decision is a *structurally* valid step from
/// the replayed `(prev_level, prev_gate)` state: the action matches the
/// recorded post-state and moves exactly one step (level ±1 with the
/// gate unchanged, or the gate flipped with the level unchanged).
/// Threshold justification is a separate, config-aware check
/// ([`ControllerConfig::justifies`](crate::control::ControllerConfig)).
pub fn audit_control_transition(
    prev_level: u32,
    prev_gate: bool,
    action: ControlAction,
    level: u32,
    gate: bool,
) -> bool {
    match action {
        ControlAction::RaiseLevel => level == prev_level + 1 && gate == prev_gate,
        ControlAction::LowerLevel => prev_level > 0 && level == prev_level - 1 && gate == prev_gate,
        ControlAction::EngageGate => !prev_gate && gate && level == prev_level,
        ControlAction::ReleaseGate => prev_gate && !gate && level == prev_level,
    }
}

/// True when every placement names an in-range site and a non-negative
/// work vector of the system's dimensionality — the structural
/// precondition [`crate::runtime::Runtime`] asserts before handing
/// clones to the site simulators.
pub fn audit_placements_valid(placements: &[(SiteId, WorkVector)], sites: usize, d: usize) -> bool {
    placements.iter().all(|(site, work)| {
        site.0 < sites
            && work.dim() == d
            && work.components().iter().all(|c| c.is_finite() && *c >= 0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_tolerates_rounding_noise_only() {
        assert!(audit_repack_conserves(100.0, 100.0 + 1e-8));
        assert!(!audit_repack_conserves(100.0, 100.1));
        assert!(audit_repack_conserves(0.0, 0.0));
    }

    #[test]
    fn cache_coherence_checks_epochs_and_footprint() {
        let bumps = |s: usize| if s == 2 { 3u64 } else { 0 };
        // Inserted at 1, hit at 3 (current 3), footprint untouched.
        assert!(audit_cache_hit_coherent(1, 3, 3, &[0, 1], bumps));
        // Footprint site 2 changed at epoch 3, after insertion at 1.
        assert!(!audit_cache_hit_coherent(1, 3, 3, &[0, 2], bumps));
        // Same footprint, but inserted after the site's last change.
        assert!(audit_cache_hit_coherent(3, 3, 3, &[0, 2], bumps));
        // Hit epoch not the replayed current epoch: tampered trace.
        assert!(!audit_cache_hit_coherent(1, 2, 3, &[], bumps));
        // Entry from the future: tampered trace.
        assert!(!audit_cache_hit_coherent(4, 3, 3, &[], bumps));
    }

    #[test]
    fn placement_validity_checks_site_range_and_shape() {
        let good = vec![(SiteId(0), WorkVector::from_slice(&[1.0, 0.0, 0.0]))];
        assert!(audit_placements_valid(&good, 2, 3));
        assert!(!audit_placements_valid(&good, 0, 3), "site out of range");
        assert!(!audit_placements_valid(&good, 2, 2), "dimension mismatch");
        // Constructors reject negative components, so corrupt one by
        // mutation — the unchecked path this predicate guards against.
        let mut corrupt = WorkVector::zeros(3);
        corrupt[0] = -1.0;
        let bad = vec![(SiteId(0), corrupt)];
        assert!(!audit_placements_valid(&bad, 2, 3), "negative work");
    }

    #[test]
    fn event_time_accessor_covers_all_variants() {
        let ev = AuditEvent::EpochBump {
            time: 2.5,
            epoch: 1,
            site: 0,
        };
        assert_eq!(ev.time(), 2.5);
        let ev = AuditEvent::PhaseDispatched {
            time: 1.0,
            query: QueryId(0),
            phase: 0,
        };
        assert_eq!(ev.time(), 1.0);
        let ev = AuditEvent::ControlDecision {
            time: 3.5,
            action: ControlAction::EngageGate,
            level: 0,
            gate: true,
            sample: PressureSample {
                time: 3.5,
                queue_depth: 2,
                retries: 0,
                alive: 4,
                avg_load: 0.9,
            },
        };
        assert_eq!(ev.time(), 3.5);
    }

    #[test]
    fn control_transitions_move_exactly_one_step() {
        use ControlAction::*;
        // Valid single steps.
        assert!(audit_control_transition(0, false, RaiseLevel, 1, false));
        assert!(audit_control_transition(2, true, LowerLevel, 1, true));
        assert!(audit_control_transition(1, false, EngageGate, 1, true));
        assert!(audit_control_transition(1, true, ReleaseGate, 1, false));
        // Level jumps, gate flips on level actions, re-engaging an
        // engaged gate: all tampered traces.
        assert!(!audit_control_transition(0, false, RaiseLevel, 2, false));
        assert!(!audit_control_transition(0, false, RaiseLevel, 1, true));
        assert!(!audit_control_transition(0, false, LowerLevel, 0, false));
        assert!(!audit_control_transition(1, true, EngageGate, 1, true));
        assert!(!audit_control_transition(1, false, ReleaseGate, 1, false));
        assert!(!audit_control_transition(1, true, ReleaseGate, 0, false));
    }
}
