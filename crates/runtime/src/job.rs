//! Queries as runtime jobs: identity, lifecycle timestamps, and the
//! per-query record the metrics layer aggregates.

use mrs_core::tree::TreeProblem;
use std::fmt;

/// Identifier of a query admitted to the runtime. Ids are dense: the
/// `n`-th submitted query gets id `n`, which doubles as its index into
/// [`crate::metrics::RunSummary::queries`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Total work volume of a problem: `Σ_op Σ_i W_op[i]`, the scalar the
/// smallest-volume-first admission policy orders by.
pub fn work_volume(problem: &TreeProblem) -> f64 {
    problem.ops.iter().map(|op| op.processing.total()).sum()
}

/// Which admission gate refused a shed query. A shed event is no longer
/// indistinguishable from its cause: the reason travels on the outcome,
/// the fault trace, and the typed [`RuntimeError::Shed`] error.
///
/// [`RuntimeError::Shed`]: crate::runtime::RuntimeError
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The alive-site fraction fell below the degrade threshold
    /// ([`RecoveryConfig::degrade_threshold`]) — the PR 3 graceful
    /// degradation gate.
    ///
    /// [`RecoveryConfig::degrade_threshold`]: crate::recovery::RecoveryConfig
    AliveCount,
    /// The overload controller's last resort: mean alive-site load sat
    /// at or above its panic threshold at arrival
    /// ([`ControllerConfig::shed_load`]).
    ///
    /// [`ControllerConfig::shed_load`]: crate::control::ControllerConfig
    MeanLoad,
    /// The overload controller's last resort: the deferred admission
    /// queue outgrew its hard bound
    /// ([`ControllerConfig::shed_queue`]).
    ///
    /// [`ControllerConfig::shed_queue`]: crate::control::ControllerConfig
    ControllerLastResort,
}

impl ShedReason {
    /// Stable label used in traces, CSVs, and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::AliveCount => "alive-count",
            ShedReason::MeanLoad => "mean-load",
            ShedReason::ControllerLastResort => "controller-last-resort",
        }
    }

    /// Stable digest discriminant (see [`RunSummary::digest`]).
    ///
    /// [`RunSummary::digest`]: crate::metrics::RunSummary::digest
    pub fn discriminant(&self) -> u8 {
        match self {
            ShedReason::AliveCount => 0,
            ShedReason::MeanLoad => 1,
            ShedReason::ControllerLastResort => 2,
        }
    }
}

/// How a query's lifecycle ended. Every submitted query terminates in
/// exactly one of these states — the runtime's "no silent drop"
/// invariant (checked by the chaos tests and example).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// All phases ran to completion.
    Completed,
    /// The runtime gave up on the query (deadline expiry or exhausted
    /// recovery retries).
    Aborted {
        /// Human-readable cause, surfaced via
        /// [`RuntimeError::Aborted`](crate::runtime::RuntimeError).
        reason: String,
    },
    /// Load-shedding refused the query at arrival.
    Shed {
        /// Which gate fired (see [`ShedReason`]).
        reason: ShedReason,
    },
}

/// Lifecycle record of one query, filled in as the event loop runs.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The query's id.
    pub id: QueryId,
    /// Submitting client (stream identity for the fair policy).
    pub client: usize,
    /// Total work volume (see [`work_volume`]).
    pub volume: f64,
    /// Virtual time the query entered the admission queue.
    pub arrival: f64,
    /// Virtual time the query was admitted (its TreeSchedule was computed
    /// and phase 0 dispatched); `None` while still queued.
    pub start: Option<f64>,
    /// Virtual time the last phase's last clone completed.
    pub finish: Option<f64>,
    /// Number of synchronized phases in the query's schedule.
    pub phases: usize,
    /// The schedule's analytic standalone response time (sum of phase
    /// makespans) — the denominator of [`QueryRecord::slowdown`].
    pub standalone_response: f64,
    /// Terminal state; `None` only while the run is still in progress.
    pub outcome: Option<QueryOutcome>,
}

impl QueryRecord {
    pub(crate) fn new(id: QueryId, client: usize, volume: f64, arrival: f64) -> Self {
        QueryRecord {
            id,
            client,
            volume,
            arrival,
            start: None,
            finish: None,
            phases: 0,
            standalone_response: 0.0,
            outcome: None,
        }
    }

    /// Time spent in the admission queue, if admitted.
    pub fn wait(&self) -> Option<f64> {
        self.start.map(|s| s - self.arrival)
    }

    /// Arrival-to-finish latency, if completed.
    pub fn latency(&self) -> Option<f64> {
        self.finish.map(|f| f - self.arrival)
    }

    /// Admission-to-finish service time, if completed.
    pub fn service(&self) -> Option<f64> {
        match (self.start, self.finish) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }

    /// Service time relative to the standalone schedule response — `1.0`
    /// means the query ran as if it had the machine to itself; larger
    /// values measure interference from concurrent queries.
    pub fn slowdown(&self) -> Option<f64> {
        let service = self.service()?;
        if self.standalone_response > 0.0 {
            Some(service / self.standalone_response)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accessors() {
        let mut r = QueryRecord::new(QueryId(3), 1, 42.0, 10.0);
        assert_eq!(r.wait(), None);
        assert_eq!(r.latency(), None);
        assert_eq!(r.outcome, None);
        r.start = Some(12.0);
        r.finish = Some(20.0);
        r.standalone_response = 4.0;
        r.outcome = Some(QueryOutcome::Completed);
        assert_eq!(r.wait(), Some(2.0));
        assert_eq!(r.latency(), Some(10.0));
        assert_eq!(r.service(), Some(8.0));
        assert_eq!(r.slowdown(), Some(2.0));
        assert_eq!(format!("{}", r.id), "q3");
    }
}
