//! The event-driven online scheduler.
//!
//! [`Runtime`] admits a stream of [`TreeProblem`]s, queues them under an
//! [`AdmissionPolicy`](crate::admission::AdmissionPolicy), and dispatches
//! each admitted query's TreeSchedule *phase by phase* onto `P` shared
//! fluid sites ([`SiteSim`]). Virtual time advances from event to event —
//! the next arrival, the earliest clone completion anywhere, the next
//! scheduled fault, the next recovery retry, or the next deadline — so
//! concurrent queries genuinely time-share sites: a site running clones
//! of two queries stretches both according to the simulator's sharing
//! discipline, and the runtime observes the stretched completion times.
//!
//! Under a [`FaultPlan`] the runtime is *fault-tolerant*: a site crash
//! evicts the resident clones, whose unfinished work vectors are
//! re-packed with the paper's `operator_schedule` onto the surviving
//! sites (see [`crate::recovery`]); when nothing is packable the work
//! parks on a capped exponential-backoff retry, and exhaustion (or a
//! per-query deadline) aborts the query with [`RuntimeError::Aborted`].
//! Every submitted query terminates in exactly one
//! [`QueryOutcome`] — completed, aborted, or shed — never silently lost.
//!
//! Determinism: every queue decision is tie-broken by submission sequence
//! numbers, completions are processed in `(time, tag)` order, fault
//! events in plan order, retries in `(time, query)` order, and sites are
//! advanced in index order. Two runs over the same submissions and plan
//! produce identical traces.
//!
//! The serving hot path is indexed and memoized: the per-event linear
//! scan over all sites is replaced by a lazy
//! [`EventCalendar`](mrs_sim::calendar::EventCalendar) (sites advance
//! only at their own events, or on demand when the runtime next touches
//! them — see [`Runtime::touch_site`]), and admission TreeSchedules are
//! memoized by plan signature in a [`ScheduleCache`](crate::cache) with
//! per-site epoch invalidation: a failure or restore stales exactly the
//! cached plans whose footprint includes the changed site. Retries stay
//! sorted by `(time, query)` and pending deadlines are tracked by a
//! cursor over the time-sorted arrivals, so picking the next event costs
//! O(1) instead of a fold per epoch.
//!
//! The site layer itself lives behind an `mrs-shardexec`
//! [`Fabric`]: with [`RuntimeConfig::shards`] `== 1` (the default) it is
//! an inline whole-machine shard — today's single-threaded loop — and
//! with `N ≥ 2` the site-local epoch phases run on `N` pinned worker
//! threads while every cross-shard effect stays serial on this event
//! loop, so the [`RunSummary`] is byte-identical for any shard count
//! (see the `mrs-shardexec` crate docs for the argument).

use crate::admission::AdmissionQueue;
use crate::cache::{schedule_digest, schedule_footprint, PlanSignature, ScheduleCache};
use crate::control::{Controller, ControllerConfig, PressureSample};
use crate::job::{work_volume, QueryId, QueryOutcome, QueryRecord, ShedReason};
use crate::metrics::{FaultRecord, FaultRecordKind, RunSummary};
use crate::recovery::{backoff_delay, rebuild_inflated, replan_lost, RecoveryConfig};
use crate::trace::{
    audit_cache_hit_coherent, audit_placements_valid, audit_repack_conserves, AuditEvent,
};
use mrs_core::comm::CommModel;
use mrs_core::error::ScheduleError;
use mrs_core::model::ResponseModel;
use mrs_core::resource::{SiteId, SystemSpec};
use mrs_core::shared::{
    tree_schedule_shared, FragmentCache, MapFragmentCache, ScheduleFragment, SubtreeSig,
};
use mrs_core::tree::{tree_schedule_capped, TreeProblem, TreeScheduleResult};
use mrs_core::vector::WorkVector;
use mrs_shardexec::fabric::Fabric;
use mrs_shardexec::merge::{completions_sorted, sort_completions};
use mrs_shardexec::segment::ShardSegment;
use mrs_sim::engine::{Completion, SimClone, SimConfig, SiteSim};
use mrs_sim::fault::{FaultKind, FaultPlan, FaultTimeline};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Why a runtime run (or one of its queries) failed.
///
/// Marked `#[non_exhaustive]`: the fault model will keep growing failure
/// modes, so downstream matches must carry a wildcard arm.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A query could not be scheduled at admission time.
    Schedule {
        /// The query whose TreeSchedule failed.
        query: QueryId,
        /// The underlying scheduling error.
        source: ScheduleError,
    },
    /// The runtime gave up on a query: its deadline expired or its
    /// recovery retries were exhausted.
    Aborted {
        /// The aborted query.
        query: QueryId,
        /// Human-readable cause.
        reason: String,
    },
    /// Load-shedding refused a query at arrival — too few alive sites
    /// (graceful degradation) or an overload-controller last resort.
    Shed {
        /// The shed query.
        query: QueryId,
        /// Which admission gate refused it.
        reason: ShedReason,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Schedule { query, source } => {
                write!(f, "scheduling {query} at admission failed: {source}")
            }
            RuntimeError::Aborted { query, reason } => {
                write!(f, "{query} aborted: {reason}")
            }
            RuntimeError::Shed { query, reason } => {
                write!(f, "{query} shed at arrival: {}", reason.label())
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Runtime configuration knobs.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Granularity parameter `f` passed to TreeSchedule at admission.
    pub f: f64,
    /// Admission-queue ordering.
    pub policy: crate::admission::AdmissionPolicy,
    /// Multiprogramming level: max queries executing concurrently.
    /// Must be at least 1.
    pub max_in_flight: usize,
    /// Optional ledger gate: with queries already running, admit another
    /// only while the mean committed `l_∞` site load stays below this.
    /// `None` disables the gate (MPL cap alone governs admission). The
    /// gate never applies to an idle system, so it cannot deadlock.
    /// The mean is taken over *alive* sites, so crashes tighten it.
    pub load_threshold: Option<f64>,
    /// Fluid-site sharing discipline and overhead.
    pub sim: SimConfig,
    /// Deterministic site crash/recover schedule and straggler factors.
    /// The empty plan (the default) is bit-exact fault-free execution.
    pub faults: FaultPlan,
    /// Per-query deadline: a query not finished within this many virtual
    /// seconds of its arrival is aborted. `None` (default) disables.
    pub deadline: Option<f64>,
    /// Recovery-loop knobs (rebuild surcharge, retry backoff, shedding).
    pub recovery: RecoveryConfig,
    /// Memoize admission TreeSchedules by plan signature (see
    /// [`crate::cache`]). Bit-exact: toggling this changes planning cost,
    /// never any output. Default `true`.
    pub schedule_cache: bool,
    /// Shadow-compute every cache hit and panic if the served schedule is
    /// not bit-identical to a fresh plan — the cache's correctness
    /// harness. Default `false` (it defeats the cache's purpose).
    pub verify_cache: bool,
    /// Shard executors for the site layer: `1` (the default) runs the
    /// single-threaded loop inline; `N ≥ 2` partitions the sites over
    /// `N` pinned worker threads. Bit-exact: the [`RunSummary`] is
    /// byte-identical for any value (clamped to the site count).
    pub shards: usize,
    /// Batched epoch barriers (default `true`): the fabric caches
    /// per-shard next-event times, skips shards with nothing due, runs
    /// single-shard epochs inline, and fuses the next-time refresh into
    /// the advance round. `false` restores the reference protocol (one
    /// NextTime plus one AdvanceDue broadcast per epoch). Bit-exact:
    /// toggling changes coordination cost, never any output.
    pub epoch_batching: bool,
    /// Record each site's full per-step utilization time series on the
    /// summary ([`RunSummary::site_util_series`]). Bit-exact but
    /// memory-proportional to the event count; the exact utilization
    /// *integral* is always recorded regardless. Default `false`.
    pub util_series: bool,
    /// Adaptive overload controller (see [`crate::control`]). Disabled
    /// by default: the controller is then never consulted and the run is
    /// byte-identical to the pre-controller runtime.
    pub controller: ControllerConfig,
    /// Batch (MQO) admission window. `0` (the default) admits queries
    /// one at a time as before. With `N ≥ 1`, queued arrivals are
    /// *released* in batches: once `N` queries are queued (or the
    /// arrival stream is exhausted, which flushes a partial window),
    /// the window is drained in policy order, every member is planned
    /// up front — sharing common subtrees when [`Self::plan_sharing`]
    /// is on — and the planned batch then dispatches through the usual
    /// MPL/load/backpressure gates in the same deterministic order.
    pub batch_window: usize,
    /// Cross-query subtree plan sharing (see [`mrs_core::shared`]).
    /// When on, cache-missing admissions are planned by
    /// `tree_schedule_shared` against a subtree-fragment memo keyed by
    /// canonical signature: subtrees already planned for another query
    /// of the window (or any earlier arrival) are spliced instead of
    /// re-packed. Requires [`Self::schedule_cache`]; ignored (with the
    /// unshared planner used) when the cache is disabled. Off by
    /// default — and with it off, runs are byte-identical to the
    /// pre-MQO runtime.
    pub plan_sharing: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            f: 0.7,
            policy: crate::admission::AdmissionPolicy::Fcfs,
            max_in_flight: 4,
            load_threshold: None,
            sim: SimConfig::default(),
            faults: FaultPlan::none(),
            deadline: None,
            recovery: RecoveryConfig::default(),
            schedule_cache: true,
            verify_cache: false,
            shards: 1,
            epoch_batching: true,
            util_series: false,
            controller: ControllerConfig::default(),
            batch_window: 0,
            plan_sharing: false,
        }
    }
}

struct ArrivalEvent {
    time: f64,
    id: QueryId,
    /// Taken (exactly once) when the arrival fires.
    problem: Option<TreeProblem>,
}

struct RunningQuery {
    /// Shared with the schedule cache: templated streams reuse one
    /// allocation across every arrival of the template.
    schedule: Arc<TreeScheduleResult>,
    /// Index of the next phase to dispatch.
    next_phase: usize,
    /// Clones of the current phase still executing.
    outstanding: usize,
    /// Lost-work batches of the current phase waiting on a retry event.
    /// The phase cannot complete while any work is parked.
    parked: usize,
}

struct CloneInfo {
    query: QueryId,
    site: SiteId,
    demand: Vec<f64>,
    /// The clone's work vector (to scale by the unfinished fraction on
    /// loss).
    work: WorkVector,
    /// Intrinsic full-speed duration (the fraction's denominator).
    duration: f64,
}

/// A parked batch of lost work awaiting a recovery retry.
struct RetryEvent {
    time: f64,
    query: QueryId,
    /// 0-based attempt counter carried into the next `handle_lost`.
    attempt: u32,
    works: Vec<WorkVector>,
}

/// The online multi-query scheduler. See the [module docs](self).
pub struct Runtime<M: ResponseModel> {
    sys: SystemSpec,
    comm: CommModel,
    model: M,
    cfg: RuntimeConfig,
    clock: f64,
    queue: AdmissionQueue,
    arrivals: Vec<ArrivalEvent>,
    pending: HashMap<QueryId, TreeProblem>,
    /// The site layer: simulators, calendar, ledger, and audit segments,
    /// single-threaded or sharded (see the [module docs](self)).
    fabric: Fabric,
    running: HashMap<QueryId, RunningQuery>,
    clones: HashMap<usize, CloneInfo>,
    next_tag: usize,
    records: Vec<QueryRecord>,
    depth_trace: Vec<(f64, usize)>,
    faults: FaultTimeline,
    /// Parked retries, kept sorted by `(time, query)` (insertion is an
    /// upper-bound binary search), so the hot loop reads the next retry
    /// time from the front instead of folding over all of them.
    retries: Vec<RetryEvent>,
    fault_trace: Vec<FaultRecord>,
    /// Plan-signature memo table for admission TreeSchedules.
    schedule_cache: ScheduleCache,
    /// Scratch for epsilon-completions swept while catching a lazily
    /// advanced site up to the clock (see [`Runtime::touch_site`]).
    touch_buf: Vec<Completion>,
    /// Cursor into the sorted `arrivals` list (avoids O(n) front
    /// removals).
    arrivals_next: usize,
    /// Cursor into the sorted `arrivals` list pointing at the earliest
    /// query not yet terminal. With a uniform deadline offset, the
    /// earliest pending deadline is this query's `arrival + d`, so the
    /// hot loop skips the per-epoch fold over every record. Terminality
    /// is monotone, so the cursor only advances.
    deadline_cursor: usize,
    /// Structured audit trace (see [`crate::trace`]): appended at phase
    /// dispatch, recovery re-pack, cache hit/insert, epoch bumps, and
    /// controller decisions; surfaced on the [`RunSummary`] for
    /// `mrs-audit`.
    audit_trace: Vec<AuditEvent>,
    /// The adaptive overload controller (see [`crate::control`]). Never
    /// consulted while disabled.
    controller: Controller,
    /// Batch-mode staging area: queries released from the queue and
    /// planned (as one MQO batch), awaiting dispatch capacity. Drained
    /// front-first, preserving the policy order the release popped.
    /// Always empty with `batch_window == 0`.
    released: VecDeque<(QueryId, Arc<TreeScheduleResult>)>,
    /// Batch-release occupancy counters: windows released and total
    /// members across them.
    batches_released: u64,
    batch_members: u64,
}

/// [`FragmentCache`] adapter over the runtime's epoch-stamped
/// [`ScheduleCache`]: every splice and insert is validated against the
/// footprint discipline and recorded on the audit trace
/// ([`AuditEvent::FragmentSpliced`] / [`AuditEvent::FragmentInsert`]),
/// so `mrs-audit` can replay sharing coherence offline.
struct TracedFragmentCache<'a> {
    cache: &'a mut ScheduleCache,
    trace: &'a mut Vec<AuditEvent>,
    time: f64,
    query: QueryId,
}

impl FragmentCache for TracedFragmentCache<'_> {
    fn get_fragment(&mut self, sig: &SubtreeSig) -> Option<Arc<ScheduleFragment>> {
        let (frag, insert_epoch, touched, digest) = self.cache.fragment_get(sig)?;
        let hit_epoch = self.cache.epoch();
        debug_assert!(
            audit_cache_hit_coherent(insert_epoch, hit_epoch, hit_epoch, &touched, |s| {
                self.cache.site_epoch(s)
            }),
            "fragment memo served {} a subtree from epoch {insert_epoch} at epoch \
             {hit_epoch} despite a footprint change",
            self.query
        );
        self.trace.push(AuditEvent::FragmentSpliced {
            time: self.time,
            query: self.query,
            insert_epoch,
            hit_epoch,
            touched,
            sig_hash: sig.hash64(),
            digest,
        });
        Some(frag)
    }

    fn insert_fragment(&mut self, sig: SubtreeSig, fragment: Arc<ScheduleFragment>) {
        let sig_hash = sig.hash64();
        let digest = self.cache.fragment_insert(sig, fragment);
        self.trace.push(AuditEvent::FragmentInsert {
            time: self.time,
            query: self.query,
            epoch: self.cache.epoch(),
            sig_hash,
            digest,
        });
    }
}

impl<M: ResponseModel> Runtime<M> {
    /// A fresh runtime over `sys` with the given communication and
    /// response-time models. Straggler factors from `cfg.faults` are
    /// applied to the site simulators up front.
    ///
    /// # Panics
    /// If `cfg.max_in_flight == 0` (nothing could ever run), or the fault
    /// plan names a site outside `sys`.
    pub fn new(sys: SystemSpec, comm: CommModel, model: M, cfg: RuntimeConfig) -> Self {
        assert!(cfg.max_in_flight >= 1, "max_in_flight must be at least 1");
        let d = sys.dim();
        let mut sims: Vec<SiteSim> = (0..sys.sites).map(|_| SiteSim::new(cfg.sim, d)).collect();
        for (site, factor) in cfg.faults.slowdowns() {
            assert!(*site < sys.sites, "straggler site {site} out of range");
            sims[*site].set_rate(*factor);
        }
        for ev in cfg.faults.events() {
            assert!(ev.site < sys.sites, "fault site {} out of range", ev.site);
        }
        let mut fabric = Fabric::new(sims, d, cfg.shards);
        fabric.set_batching(cfg.epoch_batching);
        if cfg.util_series {
            fabric.enable_util_series();
        }
        let queue = AdmissionQueue::new(cfg.policy);
        let faults = FaultTimeline::new(&cfg.faults);
        let schedule_cache = ScheduleCache::new(sys.sites);
        let controller = Controller::new(cfg.controller.clone());
        Runtime {
            sys,
            comm,
            model,
            cfg,
            clock: 0.0,
            queue,
            arrivals: Vec::new(),
            pending: HashMap::new(),
            fabric,
            running: HashMap::new(),
            clones: HashMap::new(),
            next_tag: 0,
            records: Vec::new(),
            depth_trace: Vec::new(),
            faults,
            retries: Vec::new(),
            fault_trace: Vec::new(),
            schedule_cache,
            touch_buf: Vec::new(),
            arrivals_next: 0,
            deadline_cursor: 0,
            audit_trace: Vec::new(),
            controller,
            released: VecDeque::new(),
            batches_released: 0,
            batch_members: 0,
        }
    }

    /// The overload controller's current governor level (0 = paper-
    /// optimal parallelism).
    pub fn governor_level(&self) -> u32 {
        self.controller.level()
    }

    /// Whether the backpressure gate is currently deferring admissions.
    pub fn gate_engaged(&self) -> bool {
        self.controller.gate_engaged()
    }

    /// The pressure signals as the controller would observe them right
    /// now (see [`PressureSample`]).
    pub fn pressure_sample(&mut self) -> PressureSample {
        PressureSample {
            time: self.clock,
            queue_depth: self.queue.len() + self.released.len(),
            retries: self.retries.len(),
            alive: self.fabric.alive_sites(),
            avg_load: self.fabric.avg_load(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Total clones currently committed across all sites (the ledger's
    /// scheduler-facing view; zero once a run fully drains).
    pub fn total_resident(&mut self) -> usize {
        self.fabric.total_resident()
    }

    /// Number of shard executors actually running (after clamping to the
    /// site count).
    pub fn shards(&self) -> usize {
        self.fabric.shards()
    }

    /// The per-shard audit-trace segments recorded so far, in shard
    /// order. `mrs-audit`'s trace-merge checker re-sorts them into the
    /// canonical global trace and verifies partitioning + clone
    /// conservation; the canonical trace is byte-identical for any shard
    /// count.
    pub fn shard_segments(&mut self) -> Vec<ShardSegment> {
        self.fabric.segments()
    }

    /// Submits `problem` from `client`, arriving at virtual time
    /// `arrival` (must not precede the current clock). Returns the dense
    /// query id.
    pub fn submit_at(&mut self, arrival: f64, client: usize, problem: TreeProblem) -> QueryId {
        assert!(
            arrival >= self.clock,
            "arrival {arrival} precedes current virtual time {}",
            self.clock
        );
        let id = QueryId(self.records.len());
        let volume = work_volume(&problem);
        self.records
            .push(QueryRecord::new(id, client, volume, arrival));
        self.arrivals.push(ArrivalEvent {
            time: arrival,
            id,
            problem: Some(problem),
        });
        id
    }

    /// Schedule-cache counters so far (hits, fresh plans, epoch bumps).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.schedule_cache.stats()
    }

    /// Runs the event loop until every submitted query has reached a
    /// terminal [`QueryOutcome`], then returns the aggregated
    /// [`RunSummary`]. Per-query failures (aborts, sheds) do *not* fail
    /// the run — they are recorded on the summary and retrievable as
    /// typed errors via [`RunSummary::failures`].
    ///
    /// # Errors
    /// [`RuntimeError::Schedule`] if a query's TreeSchedule fails at
    /// admission (e.g. a malformed task graph); queries admitted before
    /// the failure keep their partial progress.
    pub fn run_to_completion(&mut self) -> Result<RunSummary, RuntimeError> {
        // Arrivals in (time, id) order; ids are dense so ties (equal
        // times) resolve in submission order.
        self.arrivals
            .sort_by(|a, b| a.time.total_cmp(&b.time).then(a.id.cmp(&b.id)));
        self.arrivals_next = 0;
        let mut completions: Vec<Completion> = Vec::new();

        loop {
            let work_left = self.arrivals_next < self.arrivals.len()
                || !self.queue.is_empty()
                || !self.released.is_empty()
                || !self.running.is_empty()
                || !self.retries.is_empty();
            let next_arrival = self.arrivals.get(self.arrivals_next).map(|a| a.time);
            let next_completion = self.fabric.next_time();
            // Fault events only matter while there is work they could
            // affect; once the last query terminates, the remaining
            // schedule is irrelevant and must not stretch the horizon.
            let next_fault = if work_left {
                self.faults.peek_time()
            } else {
                None
            };
            // Retries are kept sorted by (time, query): the earliest is
            // at the front.
            let next_retry = self.retries.first().map(|r| r.time);
            // Arrivals are sorted by (time, id) and terminality is
            // monotone, so the earliest pending deadline belongs to the
            // first non-terminal query in arrival order.
            let next_deadline = self.cfg.deadline.and_then(|d| {
                while self
                    .arrivals
                    .get(self.deadline_cursor)
                    .is_some_and(|a| self.records[a.id.0].outcome.is_some())
                {
                    self.deadline_cursor += 1;
                }
                self.arrivals.get(self.deadline_cursor).map(|a| a.time + d)
            });
            let t = [
                next_arrival,
                next_completion,
                next_fault,
                next_retry,
                next_deadline,
            ]
            .into_iter()
            .flatten()
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            });
            let t = match t {
                Some(t) => t,
                None => break,
            };

            // 1. Advance only the sites with a completion due at t (the
            //    calendar knows which); every other site stays lazily
            //    behind and catches up when next touched. A completion
            //    strictly before t cannot exist: t is the global minimum.
            self.clock = t;
            completions.clear();
            self.fabric.advance_due(t, &mut completions);
            // The fabric's merge of pre-sorted shard buffers already
            // yields (time, tag) retirement order.
            debug_assert!(
                completions_sorted(&completions),
                "fabric surfaced completions out of (time, tag) order"
            );

            // 2. Retire completed clones; queries whose phase drained
            //    (and has no parked lost work) dispatch their next phase
            //    or finish. Completions beat same-instant faults and
            //    deadlines: work that was done *is* done.
            for done in completions.drain(..) {
                self.retire(done);
            }

            // 3. Apply fault events due at t, in plan order.
            while let Some(ev) = self.faults.pop_due(t) {
                self.apply_fault(ev.site, ev.kind);
            }

            // 4. Fire recovery retries due at t, in (time, query) order.
            self.fire_due_retries(t);

            // 5. Enqueue arrivals due at t — or shed them when too few
            //    sites are alive (graceful degradation).
            while self
                .arrivals
                .get(self.arrivals_next)
                .is_some_and(|a| a.time <= t)
            {
                let idx = self.arrivals_next;
                self.arrivals_next += 1;
                let (id, problem) = {
                    let ev = &mut self.arrivals[idx];
                    (
                        ev.id,
                        ev.problem.take().expect("arrival consumed exactly once"),
                    )
                };
                let alive_frac = self.fabric.alive_sites() as f64 / self.sys.sites as f64;
                let shed_reason = if alive_frac < self.cfg.recovery.degrade_threshold {
                    Some(ShedReason::AliveCount)
                } else if self.controller.enabled() {
                    // Controller last resort: hard bounds only; plain
                    // overload defers through the gate instead.
                    let sample = self.pressure_sample();
                    self.controller.last_resort_shed(&sample)
                } else {
                    None
                };
                if let Some(reason) = shed_reason {
                    self.records[id.0].outcome = Some(QueryOutcome::Shed { reason });
                    self.fault_trace.push(FaultRecord {
                        time: t,
                        kind: FaultRecordKind::Shed { query: id, reason },
                    });
                    continue;
                }
                let rec = &self.records[id.0];
                self.queue.push(id, rec.client, rec.volume);
                self.pending.insert(id, problem);
            }

            // 6. Expire deadlines: queued or running queries whose
            //    arrival + deadline has passed are aborted, in query-id
            //    order. Arrivals are time-sorted, so the candidates are
            //    a prefix starting at the deadline cursor — no scan over
            //    every record.
            if let Some(d) = self.cfg.deadline {
                let mut expired: Vec<QueryId> = self.arrivals[self.deadline_cursor..]
                    .iter()
                    .take_while(|a| a.time + d <= t)
                    .filter(|a| self.records[a.id.0].outcome.is_none())
                    .map(|a| a.id)
                    .collect();
                expired.sort_unstable();
                for id in expired {
                    self.abort_query(id, "deadline expired");
                }
            }

            // 6½. Feed the controller one pressure observation, after
            //     every state change at t and before admission, so the
            //     gate and governor act on this epoch's admissions. The
            //     disabled controller is never consulted at all.
            if self.controller.enabled() {
                let sample = self.pressure_sample();
                for d in self.controller.observe(sample) {
                    self.audit_trace.push(AuditEvent::ControlDecision {
                        time: t,
                        action: d.action,
                        level: d.level,
                        gate: d.gate,
                        sample: d.sample,
                    });
                }
            }

            // 7. Admit while capacity allows.
            self.try_admit()?;

            self.depth_trace
                .push((t, self.queue.len() + self.released.len()));
        }

        Ok(self.summary())
    }

    /// Retires one completed clone: releases its ledger commitment and,
    /// if its query's phase has fully drained, advances the query.
    fn retire(&mut self, done: Completion) {
        let info = self
            .clones
            .remove(&done.tag)
            .expect("completion for unknown clone tag");
        self.fabric.release(info.site.0, &info.demand);
        let rq = self
            .running
            .get_mut(&info.query)
            .expect("completion for query not running");
        rq.outstanding -= 1;
        if rq.outstanding == 0 && rq.parked == 0 {
            self.advance_query(info.query);
        }
    }

    /// Catches a lazily advanced site up to the current clock before the
    /// runtime mutates it (dispatch, crash, eviction). The calendar keeps
    /// sites frozen between their own events, so any interaction with a
    /// site *must* route through here first — otherwise the mutation
    /// would apply at a stale local time. Advancing can surface clones
    /// whose residual work rounds to zero at the clock; those retire
    /// through the normal completion path (in `(time, tag)` order) so
    /// their queries observe them as finished, not evicted.
    fn touch_site(&mut self, site: usize) {
        let mut buf = std::mem::take(&mut self.touch_buf);
        self.fabric.catch_up(site, self.clock, &mut buf);
        if !buf.is_empty() {
            // Kept even with per-shard pre-sorting: a same-instant
            // cascade inside one catch-up emits in the engine's
            // active-array order, not tag order.
            sort_completions(&mut buf);
            for done in buf.drain(..) {
                self.retire(done);
            }
        }
        self.touch_buf = buf;
    }

    /// Applies one fault event to the site simulators, ledger, and any
    /// affected queries. Any environment change (crash or restore) bumps
    /// the changed site's schedule-cache epoch: no plan whose footprint
    /// includes the site is served from before the change (plans that
    /// never touch it stay servable — see [`crate::cache`]).
    fn apply_fault(&mut self, site: usize, kind: FaultKind) {
        match kind {
            FaultKind::Crash => {
                if self.fabric.is_down(site) {
                    return;
                }
                self.touch_site(site);
                // Evicts the residents, invalidates the calendar entry,
                // and releases the site from its ledger slice.
                let lost = self.fabric.fail_site(site);
                self.schedule_cache.bump_epoch(site);
                self.audit_trace.push(AuditEvent::EpochBump {
                    time: self.clock,
                    epoch: self.schedule_cache.epoch(),
                    site,
                });
                self.fault_trace.push(FaultRecord {
                    time: self.clock,
                    kind: FaultRecordKind::SiteDown {
                        site,
                        clones_lost: lost.len(),
                    },
                });
                // Scale each lost clone's work vector by its unfinished
                // fraction and group by owning query (residency order →
                // deterministic).
                let mut by_query: Vec<(QueryId, Vec<WorkVector>)> = Vec::new();
                for lc in lost {
                    let info = self
                        .clones
                        .remove(&lc.tag)
                        .expect("lost clone was not tracked");
                    let frac = lc.remaining / info.duration;
                    let rem = info.work.scaled(frac);
                    self.fault_trace.push(FaultRecord {
                        time: self.clock,
                        kind: FaultRecordKind::CloneLost { query: info.query },
                    });
                    match by_query.iter_mut().find(|(q, _)| *q == info.query) {
                        Some((_, works)) => works.push(rem),
                        None => by_query.push((info.query, vec![rem])),
                    }
                }
                for (query, works) in by_query {
                    let rq = self
                        .running
                        .get_mut(&query)
                        .expect("lost clones belong to a running query");
                    rq.outstanding -= works.len();
                    self.handle_lost(query, works, 0);
                    self.maybe_advance(query);
                }
            }
            FaultKind::Recover => {
                if !self.fabric.is_down(site) {
                    return;
                }
                // A down site is idle (no completions to sweep), so the
                // restore needs no catch-up; the site's clock fast-forwards
                // at its next touch.
                self.fabric.restore_site(site);
                self.schedule_cache.bump_epoch(site);
                self.audit_trace.push(AuditEvent::EpochBump {
                    time: self.clock,
                    epoch: self.schedule_cache.epoch(),
                    site,
                });
                self.fault_trace.push(FaultRecord {
                    time: self.clock,
                    kind: FaultRecordKind::SiteUp { site },
                });
            }
        }
    }

    /// Pops and runs every retry due at or before `t`, in `(time, query)`
    /// order — the list's standing sort order, so the due set is a
    /// front prefix.
    fn fire_due_retries(&mut self, t: f64) {
        if self.retries.first().is_none_or(|r| r.time > t) {
            return;
        }
        let split = self.retries.partition_point(|r| r.time <= t);
        let due: Vec<RetryEvent> = self.retries.drain(..split).collect();
        for ev in due {
            // The query may have been aborted since parking; abort_query
            // purges its retries, so reaching here means it still runs.
            let rq = self
                .running
                .get_mut(&ev.query)
                .expect("retry for query not running");
            rq.parked -= 1;
            self.handle_lost(ev.query, ev.works, ev.attempt);
            self.maybe_advance(ev.query);
        }
    }

    /// Recovery entry point: re-packs `works` (lost work vectors of
    /// `query`) onto the surviving sites, or parks them on a backoff
    /// retry, or — past the retry cap — aborts the query.
    fn handle_lost(&mut self, query: QueryId, works: Vec<WorkVector>, attempt: u32) {
        let alive: Vec<SiteId> = self.fabric.alive_list();
        let replanned = if alive.is_empty() {
            None
        } else {
            replan_lost(
                &works,
                &alive,
                &self.sys.site,
                &self.comm,
                self.cfg.recovery.rebuild_factor,
            )
            .ok()
        };
        match replanned {
            Some(placements) => {
                // Work conservation through recovery (Repacked audit
                // event): the re-pack must place exactly the lost work,
                // inflated by the rebuild surcharge, plus one EA1
                // startup cost α per degree-1 replacement clone.
                let lost_total: f64 = works.iter().map(WorkVector::total).sum();
                let expected_total: f64 = works
                    .iter()
                    .map(|w| {
                        rebuild_inflated(w, &self.sys.site, self.cfg.recovery.rebuild_factor)
                            .total()
                            + self.comm.alpha
                    })
                    .sum();
                let placed_total: f64 = placements.iter().map(|(_, w)| w.total()).sum();
                debug_assert!(
                    audit_repack_conserves(expected_total, placed_total),
                    "recovery re-pack leaked work for {query}: expected {expected_total}, \
                     placed {placed_total}"
                );
                self.audit_trace.push(AuditEvent::Repacked {
                    time: self.clock,
                    query,
                    lost_total,
                    expected_total,
                    placed_total,
                });
                // Hold the phase barrier while dispatching: catching a
                // target site up to the clock can retire this query's
                // last outstanding clone, and without the guard that
                // would advance the phase before the re-packed work is
                // counted.
                self.running
                    .get_mut(&query)
                    .expect("re-pack for query not running")
                    .parked += 1;
                let dispatched = self.dispatch_placements(query, &placements);
                let rq = self
                    .running
                    .get_mut(&query)
                    .expect("re-pack for query not running");
                rq.parked -= 1;
                rq.outstanding += dispatched;
                self.fault_trace.push(FaultRecord {
                    time: self.clock,
                    kind: FaultRecordKind::Repacked {
                        query,
                        clones: placements.len(),
                    },
                });
            }
            None => {
                if attempt >= self.cfg.recovery.max_retries {
                    self.abort_query(query, "recovery retries exhausted");
                } else {
                    let at = self.clock + backoff_delay(&self.cfg.recovery, attempt);
                    // Upper-bound insertion keeps the list sorted by
                    // (time, query) with equal keys in insertion order —
                    // the same order the old stable sort produced.
                    let pos = self.retries.partition_point(|r| {
                        r.time.total_cmp(&at).then(r.query.cmp(&query))
                            != std::cmp::Ordering::Greater
                    });
                    self.retries.insert(
                        pos,
                        RetryEvent {
                            time: at,
                            query,
                            attempt: attempt + 1,
                            works,
                        },
                    );
                    self.running
                        .get_mut(&query)
                        .expect("parked query not running")
                        .parked += 1;
                    self.fault_trace.push(FaultRecord {
                        time: self.clock,
                        kind: FaultRecordKind::RetryScheduled {
                            query,
                            attempt: attempt + 1,
                            at,
                        },
                    });
                }
            }
        }
    }

    /// Aborts `query` wherever it currently lives (queued or running):
    /// evicts its executing clones, purges its retries, and records the
    /// terminal outcome.
    fn abort_query(&mut self, id: QueryId, reason: &str) {
        if self.records[id.0].outcome.is_some() {
            return;
        }
        // First catch the hosting sites up to the clock (in index order,
        // for determinism). Catch-up can complete *this* query — its last
        // clones may finish within float noise of the abort instant — and
        // a completion beats a same-instant abort.
        let mut sites: Vec<usize> = self
            .clones
            .values()
            .filter(|c| c.query == id)
            .map(|c| c.site.0)
            .collect();
        sites.sort_unstable();
        sites.dedup();
        for site in sites {
            self.touch_site(site);
        }
        if self.records[id.0].outcome.is_some() {
            return;
        }
        // Evict the surviving clones in sorted-tag order so the
        // simulators' float state evolves identically run to run.
        let mut tags: Vec<usize> = self
            .clones
            .iter()
            .filter(|(_, c)| c.query == id)
            .map(|(tag, _)| *tag)
            .collect();
        tags.sort_unstable();
        for tag in tags {
            let info = self.clones.remove(&tag).expect("tag collected above");
            let _ = self.fabric.remove_clone(info.site.0, tag);
            self.fabric.release(info.site.0, &info.demand);
        }
        self.retries.retain(|r| r.query != id);
        self.running.remove(&id);
        self.queue.remove(id);
        self.pending.remove(&id);
        self.released.retain(|(q, _)| *q != id);
        self.records[id.0].outcome = Some(QueryOutcome::Aborted {
            reason: reason.to_owned(),
        });
        self.fault_trace.push(FaultRecord {
            time: self.clock,
            kind: FaultRecordKind::Aborted { query: id },
        });
    }

    /// Advances `id` if its current phase has fully drained (no executing
    /// clones and no parked lost work). No-op for terminated queries.
    fn maybe_advance(&mut self, id: QueryId) {
        if let Some(rq) = self.running.get(&id) {
            if rq.outstanding == 0 && rq.parked == 0 {
                self.advance_query(id);
            }
        }
    }

    /// Inserts clones at the given placements, committing their demand to
    /// the ledger; returns how many are actually executing (zero-duration
    /// clones complete inline).
    fn dispatch_placements(&mut self, id: QueryId, placements: &[(SiteId, WorkVector)]) -> usize {
        debug_assert!(
            audit_placements_valid(placements, self.sys.sites, self.sys.dim()),
            "dispatch for {id} carries an out-of-range site or malformed work vector"
        );
        let mut dispatched = 0usize;
        for (site, work) in placements {
            // Lazy calendar discipline: the site must be at the current
            // clock before a clone lands on it.
            self.touch_site(site.0);
            let duration = self.model.t_seq(work);
            let tag = self.next_tag;
            self.next_tag += 1;
            let clone = SimClone {
                tag,
                work: work.clone(),
                duration,
            };
            let demand: Vec<f64> = work.components().iter().map(|w| w / duration).collect();
            // One fused cell round-trip: insert + ledger commit (the
            // commit is skipped inside when the clone completes inline).
            if self.fabric.place_clone(site.0, &clone, &demand).is_some() {
                // Zero-duration clone: completed inline, nothing to
                // track.
                continue;
            }
            self.clones.insert(
                tag,
                CloneInfo {
                    query: id,
                    site: *site,
                    demand,
                    work: work.clone(),
                    duration,
                },
            );
            dispatched += 1;
        }
        dispatched
    }

    /// Dispatches phases of `id` starting at `next_phase` until one has
    /// executing (or parked) clones or the query finishes. Phases whose
    /// clones all have zero duration complete inline at the current
    /// clock. Placements pinned to a crashed site are *displaced*: their
    /// work is migrated through the recovery path (rebuild surcharge
    /// included) instead of being dispatched onto the dead site.
    fn advance_query(&mut self, id: QueryId) {
        loop {
            let rq = match self.running.get_mut(&id) {
                Some(rq) => rq,
                // Aborted while displaced work was being recovered.
                None => return,
            };
            if rq.next_phase == rq.schedule.phases.len() {
                let rec = &mut self.records[id.0];
                rec.finish = Some(self.clock);
                rec.outcome = Some(QueryOutcome::Completed);
                self.running.remove(&id);
                return;
            }
            let phase_idx = rq.next_phase;
            rq.next_phase += 1;
            self.audit_trace.push(AuditEvent::PhaseDispatched {
                time: self.clock,
                query: id,
                phase: phase_idx,
            });

            // Collect the phase's clone placements first (borrow of the
            // schedule ends before we mutate sims/ledger).
            let placements: Vec<(SiteId, WorkVector)> = {
                let phase = &self.running[&id].schedule.phases[phase_idx];
                phase
                    .schedule
                    .ops
                    .iter()
                    .zip(&phase.schedule.assignment.homes)
                    .flat_map(|(op, homes)| {
                        homes
                            .iter()
                            .zip(&op.clones)
                            .map(|(site, work)| (*site, work.clone()))
                    })
                    .collect()
            };

            // Partition into live placements and work displaced from
            // crashed sites (data-placement constraints migrate through
            // the recovery re-pack).
            let mut live: Vec<(SiteId, WorkVector)> = Vec::new();
            let mut displaced: Vec<WorkVector> = Vec::new();
            for (site, work) in placements {
                if self.fabric.is_alive(site.0) {
                    live.push((site, work));
                } else {
                    displaced.push(work);
                }
            }

            let dispatched = self.dispatch_placements(id, &live);
            self.running
                .get_mut(&id)
                .expect("query not running")
                .outstanding += dispatched;
            if !displaced.is_empty() {
                for _ in &displaced {
                    self.fault_trace.push(FaultRecord {
                        time: self.clock,
                        kind: FaultRecordKind::CloneLost { query: id },
                    });
                }
                self.handle_lost(id, displaced, 0);
            }
            let rq = match self.running.get(&id) {
                Some(rq) => rq,
                None => return,
            };
            if rq.outstanding > 0 || rq.parked > 0 {
                return;
            }
            // All-zero phase: fall through and dispatch the next one at
            // the same instant.
        }
    }

    /// Whether one more query may start right now: below the MPL cap
    /// and, for a busy system, past the optional ledger load gate and
    /// the controller's backpressure gate. Neither gate applies to an
    /// idle system, so admission cannot deadlock.
    fn admission_open(&mut self) -> bool {
        if self.running.len() >= self.cfg.max_in_flight {
            return false;
        }
        if !self.running.is_empty() {
            if let Some(thr) = self.cfg.load_threshold {
                if self.fabric.avg_load() >= thr {
                    return false;
                }
            }
            // Backpressure: an engaged gate defers every queued
            // arrival until the load falls back through the low
            // watermark.
            if self.controller.enabled() && self.controller.gate_engaged() {
                return false;
            }
        }
        true
    }

    /// Moves a planned query into execution at the current clock.
    fn start_query(&mut self, id: QueryId, schedule: Arc<TreeScheduleResult>) {
        let rec = &mut self.records[id.0];
        rec.start = Some(self.clock);
        rec.phases = schedule.phases.len();
        rec.standalone_response = schedule.response_time;
        self.running.insert(
            id,
            RunningQuery {
                schedule,
                next_phase: 0,
                outstanding: 0,
                parked: 0,
            },
        );
        self.advance_query(id);
    }

    /// Admits queued queries while the MPL cap (and, for a busy system,
    /// the optional ledger load gate and the controller's backpressure
    /// gate) allows. With [`RuntimeConfig::batch_window`] set, queries
    /// are first *released* from the queue in MQO batches and planned
    /// together ([`Runtime::try_admit_batched`]).
    fn try_admit(&mut self) -> Result<(), RuntimeError> {
        if self.cfg.batch_window > 0 {
            return self.try_admit_batched();
        }
        while !self.queue.is_empty() && self.admission_open() {
            let id = self.queue.pop().expect("queue checked non-empty");
            let problem = self
                .pending
                .remove(&id)
                .expect("admitted query has no pending problem");
            let schedule = self.plan(id, &problem)?;
            self.start_query(id, schedule);
        }
        Ok(())
    }

    /// Batch (MQO) admission: whenever the staging area is empty and a
    /// full window is queued — or the arrival stream is exhausted, which
    /// flushes a partial window — pops `batch_window` queries in policy
    /// order and plans them all up front, so with plan sharing on, the
    /// batch's common subtrees are packed once and spliced by every
    /// later member ("build once, probe many"). The planned batch then
    /// dispatches through the same gates as singleton admission, in the
    /// release order. Deterministic: release instants depend only on
    /// queue/arrival state, and both the release and the drain preserve
    /// the policy's documented order.
    fn try_admit_batched(&mut self) -> Result<(), RuntimeError> {
        loop {
            if self.released.is_empty() {
                let window = self.cfg.batch_window;
                let arrivals_done = self.arrivals_next >= self.arrivals.len();
                if self.queue.is_empty() || (self.queue.len() < window && !arrivals_done) {
                    return Ok(());
                }
                let take = window.min(self.queue.len());
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    batch.push(self.queue.pop().expect("queue checked non-empty"));
                }
                self.batches_released += 1;
                self.batch_members += batch.len() as u64;
                for id in batch {
                    let problem = self
                        .pending
                        .remove(&id)
                        .expect("released query has no pending problem");
                    let schedule = self.plan(id, &problem)?;
                    self.released.push_back((id, schedule));
                }
            }
            while !self.released.is_empty() && self.admission_open() {
                let (id, schedule) = self.released.pop_front().expect("checked non-empty");
                self.start_query(id, schedule);
            }
            // Blocked mid-batch (MPL or a gate): wait for capacity.
            // Fully drained with more queued: release the next window.
            if !self.released.is_empty() || self.queue.is_empty() {
                return Ok(());
            }
        }
    }

    /// Produces the admission TreeSchedule for `problem` — from the
    /// plan-signature cache when enabled, computing (and memoizing) a
    /// fresh plan otherwise. With `verify_cache` set, every hit is
    /// shadow-computed and compared bit-for-bit.
    ///
    /// The controller's governed degree cap is part of the plan's
    /// identity: signatures key on the cap, so a template planned at
    /// level 2 and the same template at level 0 coexist in the cache and
    /// each admission is served the plan matching the *current* level.
    fn plan(
        &mut self,
        id: QueryId,
        problem: &TreeProblem,
    ) -> Result<Arc<TreeScheduleResult>, RuntimeError> {
        let cap = self.controller.degree_cap(self.sys.sites);
        if !self.cfg.schedule_cache {
            self.schedule_cache.count_uncached_plan(problem.tasks.len());
            let fresh =
                tree_schedule_capped(problem, self.cfg.f, &self.sys, &self.comm, &self.model, cap)
                    .map_err(|source| RuntimeError::Schedule { query: id, source })?;
            return Ok(Arc::new(fresh));
        }
        let sig = PlanSignature::of_capped(problem, self.cfg.f, cap);
        match self.schedule_cache.get(&sig) {
            Some((hit, insert_epoch, touched)) => {
                let hit_epoch = self.schedule_cache.epoch();
                debug_assert!(
                    audit_cache_hit_coherent(insert_epoch, hit_epoch, hit_epoch, &touched, |s| {
                        self.schedule_cache.site_epoch(s)
                    }),
                    "cache served {id} a plan from epoch {insert_epoch} at epoch {hit_epoch} \
                     despite a footprint change"
                );
                self.audit_trace.push(AuditEvent::CacheHit {
                    time: self.clock,
                    query: id,
                    insert_epoch,
                    hit_epoch,
                    touched,
                });
                if self.cfg.verify_cache {
                    // The shadow replans with the same strategy that
                    // produced the cached entry: shared-mode plans come
                    // from the per-task shared packer, singleton plans
                    // from the joint per-level packer. Either way the
                    // hit must be bit-identical to a cold recompute.
                    let fresh = if self.cfg.plan_sharing {
                        let mut shadow = MapFragmentCache::new();
                        tree_schedule_shared(
                            problem,
                            self.cfg.f,
                            &self.sys,
                            &self.comm,
                            &self.model,
                            cap,
                            &mut shadow,
                        )
                        .map_err(|source| RuntimeError::Schedule { query: id, source })?
                        .0
                    } else {
                        tree_schedule_capped(
                            problem,
                            self.cfg.f,
                            &self.sys,
                            &self.comm,
                            &self.model,
                            cap,
                        )
                        .map_err(|source| RuntimeError::Schedule { query: id, source })?
                    };
                    assert_eq!(
                        schedule_digest(&hit),
                        schedule_digest(&fresh),
                        "schedule cache served a non-identical plan for {id}"
                    );
                }
                Ok(hit)
            }
            None => {
                let fresh = if self.cfg.plan_sharing {
                    let time = self.clock;
                    let mut adapter = TracedFragmentCache {
                        cache: &mut self.schedule_cache,
                        trace: &mut self.audit_trace,
                        time,
                        query: id,
                    };
                    let (result, stats) = tree_schedule_shared(
                        problem,
                        self.cfg.f,
                        &self.sys,
                        &self.comm,
                        &self.model,
                        cap,
                        &mut adapter,
                    )
                    .map_err(|source| RuntimeError::Schedule { query: id, source })?;
                    self.schedule_cache.absorb_shared(&stats);
                    Arc::new(result)
                } else {
                    self.schedule_cache.count_planned_tasks(problem.tasks.len());
                    Arc::new(
                        tree_schedule_capped(
                            problem,
                            self.cfg.f,
                            &self.sys,
                            &self.comm,
                            &self.model,
                            cap,
                        )
                        .map_err(|source| RuntimeError::Schedule { query: id, source })?,
                    )
                };
                self.schedule_cache
                    .insert(sig, Arc::clone(&fresh), schedule_footprint(&fresh));
                self.audit_trace.push(AuditEvent::CacheInsert {
                    time: self.clock,
                    query: id,
                    epoch: self.schedule_cache.epoch(),
                });
                Ok(fresh)
            }
        }
    }

    fn summary(&mut self) -> RunSummary {
        let horizon = self.clock;
        let mut s = RunSummary::new(
            self.cfg.policy.label(),
            horizon,
            self.records.clone(),
            self.fabric.busy(),
            self.depth_trace.clone(),
            self.fault_trace.clone(),
        );
        s.cache = self.schedule_cache.stats();
        s.cache.batches_released = self.batches_released;
        s.cache.batch_members = self.batch_members;
        s.trace = self.audit_trace.clone();
        s.site_peak_util = self.fabric.peak_util();
        s.site_util_integral = self.fabric.util_integral();
        if self.cfg.util_series {
            s.site_util_series = self.fabric.util_series();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};
    use mrs_core::prelude::OverlapModel;
    use mrs_core::tasks::TaskGraph;
    use mrs_sim::fault::FaultEvent;

    fn one_op_problem(cpu: f64) -> TreeProblem {
        let op = OperatorSpec::floating(
            OperatorId(0),
            OperatorKind::Scan,
            WorkVector::from_slice(&[cpu, cpu / 2.0, 0.0]),
            1_000_000.0,
        );
        TreeProblem {
            ops: vec![op],
            tasks: TaskGraph::single_task(vec![OperatorId(0)]),
            bindings: vec![],
        }
    }

    fn runtime(policy: AdmissionPolicy, mpl: usize) -> Runtime<OverlapModel> {
        runtime_with(RuntimeConfig {
            policy,
            max_in_flight: mpl,
            ..RuntimeConfig::default()
        })
    }

    fn runtime_with(cfg: RuntimeConfig) -> Runtime<OverlapModel> {
        Runtime::new(
            SystemSpec::homogeneous(4),
            CommModel::paper_defaults(),
            OverlapModel::new(0.5).unwrap(),
            cfg,
        )
    }

    fn crash(time: f64, site: usize) -> FaultEvent {
        FaultEvent {
            time,
            site,
            kind: FaultKind::Crash,
        }
    }

    fn recover(time: f64, site: usize) -> FaultEvent {
        FaultEvent {
            time,
            site,
            kind: FaultKind::Recover,
        }
    }

    #[test]
    fn empty_run_completes_immediately() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 2);
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 0);
        assert_eq!(summary.horizon, 0.0);
    }

    #[test]
    fn single_query_runs_and_finishes() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 2);
        let id = rt.submit_at(1.0, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 1);
        let rec = &summary.queries[id.0];
        assert_eq!(rec.start, Some(1.0));
        assert!(rec.finish.unwrap() > 1.0);
        assert!((rec.service().unwrap() - rec.standalone_response).abs() < 1e-9);
        assert_eq!(rec.outcome, Some(QueryOutcome::Completed));
        // Ledger drained.
        assert_eq!(rt.total_resident(), 0);
    }

    #[test]
    fn mpl_cap_queues_excess_queries() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 1);
        let a = rt.submit_at(0.0, 0, one_op_problem(10.0));
        let b = rt.submit_at(0.0, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        let (ra, rb) = (&summary.queries[a.0], &summary.queries[b.0]);
        // b waited for a to finish.
        assert_eq!(rb.start, ra.finish);
        assert!(rb.wait().unwrap() > 0.0);
        assert_eq!(summary.max_queue_depth(), 1);
    }

    #[test]
    fn late_arrival_respected() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 4);
        let id = rt.submit_at(100.0, 0, one_op_problem(5.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.queries[id.0].start, Some(100.0));
    }

    #[test]
    #[should_panic(expected = "max_in_flight")]
    fn zero_mpl_rejected() {
        let cfg = RuntimeConfig {
            max_in_flight: 0,
            ..RuntimeConfig::default()
        };
        let _ = Runtime::new(
            SystemSpec::homogeneous(2),
            CommModel::paper_defaults(),
            OverlapModel::new(0.5).unwrap(),
            cfg,
        );
    }

    #[test]
    fn runtime_error_display_is_stable() {
        let abort = RuntimeError::Aborted {
            query: QueryId(3),
            reason: "deadline expired".to_owned(),
        };
        assert_eq!(format!("{abort}"), "q3 aborted: deadline expired");
        let shed = RuntimeError::Shed {
            query: QueryId(7),
            reason: ShedReason::AliveCount,
        };
        assert_eq!(format!("{shed}"), "q7 shed at arrival: alive-count");
        // Clone + PartialEq let tests compare whole failure lists.
        assert_eq!(abort.clone(), abort);
        assert_ne!(abort, shed);
    }

    #[test]
    fn crash_mid_phase_repacks_onto_survivors() {
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![crash(1.0, 0)]),
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        // Big enough to still be running at t=1 and spread over sites.
        let id = rt.submit_at(0.0, 0, one_op_problem(40.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.queries[id.0].outcome, Some(QueryOutcome::Completed));
        assert_eq!(summary.sites_failed(), 1);
        // The lost work made the run strictly longer than fault-free.
        let mut baseline = runtime(AdmissionPolicy::Fcfs, 4);
        baseline.submit_at(0.0, 0, one_op_problem(40.0));
        let base = baseline.run_to_completion().unwrap();
        if summary.clones_lost() > 0 {
            assert!(summary.repacks() > 0, "lost clones must be re-packed");
            assert!(summary.horizon > base.horizon);
        }
        assert_eq!(rt.total_resident(), 0);
    }

    #[test]
    fn total_outage_parks_work_until_recovery() {
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![
                crash(1.0, 0),
                crash(1.0, 1),
                crash(1.0, 2),
                crash(1.0, 3),
                recover(2.0, 0),
                recover(2.0, 1),
                recover(2.0, 2),
                recover(2.0, 3),
            ]),
            recovery: RecoveryConfig {
                backoff_base: 2.0,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let id = rt.submit_at(0.0, 0, one_op_problem(40.0));
        let summary = rt.run_to_completion().unwrap();
        let rec = &summary.queries[id.0];
        assert_eq!(rec.outcome, Some(QueryOutcome::Completed));
        // All four sites died at t=1 with the query in flight: the work
        // parked (retry at 1 + 2.0 = 3.0, after recovery at 2.0) and then
        // re-packed; the finish lands after the retry fired.
        assert_eq!(summary.sites_failed(), 4);
        assert!(summary.clones_lost() > 0);
        assert!(summary.repacks() > 0);
        assert!(rec.finish.unwrap() > 3.0);
        assert_eq!(rt.total_resident(), 0);
    }

    #[test]
    fn exhausted_retries_abort_the_query() {
        // Sites never come back and retries cap out fast.
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![
                crash(1.0, 0),
                crash(1.0, 1),
                crash(1.0, 2),
                crash(1.0, 3),
            ]),
            recovery: RecoveryConfig {
                max_retries: 2,
                backoff_base: 0.5,
                backoff_cap: 1.0,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let id = rt.submit_at(0.0, 0, one_op_problem(40.0));
        let summary = rt.run_to_completion().unwrap();
        match &summary.queries[id.0].outcome {
            Some(QueryOutcome::Aborted { reason }) => {
                assert!(reason.contains("retries exhausted"), "{reason}");
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(summary.aborted(), 1);
        let failures = summary.failures();
        assert_eq!(failures.len(), 1);
        assert!(matches!(&failures[0], RuntimeError::Aborted { query, .. } if *query == id));
        assert_eq!(rt.total_resident(), 0);
    }

    #[test]
    fn deadline_aborts_a_slow_query() {
        let cfg = RuntimeConfig {
            deadline: Some(0.5),
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let id = rt.submit_at(0.0, 0, one_op_problem(40.0));
        let summary = rt.run_to_completion().unwrap();
        match &summary.queries[id.0].outcome {
            Some(QueryOutcome::Aborted { reason }) => {
                assert!(reason.contains("deadline"), "{reason}");
            }
            other => panic!("expected deadline abort, got {other:?}"),
        }
        // The run ends at the deadline, not at the query's natural end.
        assert!((summary.horizon - 0.5).abs() < 1e-12);
        assert_eq!(rt.total_resident(), 0);
    }

    #[test]
    fn same_instant_completion_crash_and_deadline_share_one_barrier() {
        // Queries rooted on disjoint sites: co-resident clones under
        // demand-proportional sharing drain together, so contention
        // would collapse the two finish times onto one instant.
        use mrs_core::operator::Placement;
        let rooted = |cpu: f64, site: usize| {
            let mut p = one_op_problem(cpu);
            p.ops[0].placement = Placement::Rooted(vec![SiteId(site)]);
            p
        };

        // Stage 1: run both queries cleanly and capture the short
        // query's exact finish float.
        let mut probe = runtime(AdmissionPolicy::Fcfs, 2);
        let short = probe.submit_at(0.0, 0, rooted(10.0, 0));
        let long = probe.submit_at(0.0, 0, rooted(40.0, 1));
        let clean = probe.run_to_completion().unwrap();
        let t = clean.queries[short.0].finish.unwrap();
        assert!(clean.queries[long.0].finish.unwrap() > t);

        // Stage 2: a scripted crash on the long query's site and the
        // long query's deadline both land on that exact instant, so a
        // single coalesced barrier round carries a completion, a
        // fault, and a deadline expiry at once. The PR4 ordering must
        // survive batching: the completion retires first, then the
        // crash and the deadline kill the survivor — at every shard
        // count, with batched barriers on and off.
        let run = |shards: usize, batching: bool| {
            let cfg = RuntimeConfig {
                faults: FaultPlan::scripted(vec![crash(t, 1)]),
                deadline: Some(t),
                shards,
                epoch_batching: batching,
                ..RuntimeConfig::default()
            };
            let mut rt = runtime_with(cfg);
            rt.submit_at(0.0, 0, rooted(10.0, 0));
            rt.submit_at(0.0, 0, rooted(40.0, 1));
            rt.run_to_completion().unwrap()
        };
        let base = run(1, true);
        assert_eq!(
            base.queries[short.0].finish,
            Some(t),
            "the same-instant crash must not disturb the completion"
        );
        assert_eq!(base.queries[short.0].outcome, Some(QueryOutcome::Completed));
        match &base.queries[long.0].outcome {
            Some(QueryOutcome::Aborted { reason }) => {
                assert!(reason.contains("deadline"), "{reason}");
            }
            other => panic!("expected deadline abort, got {other:?}"),
        }
        assert_eq!(base.sites_failed(), 1);
        // All three events share one barrier instant: the run ends there.
        assert_eq!(base.horizon.to_bits(), t.to_bits());
        let base_digest = base.digest();
        for batching in [true, false] {
            for shards in [1usize, 2, 4] {
                let summary = run(shards, batching);
                assert_eq!(
                    summary.digest(),
                    base_digest,
                    "diverged at shards={shards} batching={batching}"
                );
            }
        }
    }

    #[test]
    fn degraded_mode_sheds_arrivals() {
        // Three of four sites die before the query arrives; with a 0.9
        // threshold the survivor fraction 0.25 sheds the arrival.
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![crash(0.5, 0), crash(0.5, 1), crash(0.5, 2)]),
            recovery: RecoveryConfig {
                degrade_threshold: 0.9,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let id = rt.submit_at(1.0, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(
            summary.queries[id.0].outcome,
            Some(QueryOutcome::Shed {
                reason: ShedReason::AliveCount
            })
        );
        assert_eq!(summary.completed(), 0);
        assert_eq!(summary.shed(), 1);
        assert_eq!(summary.shed_for(ShedReason::AliveCount), 1);
        assert!(matches!(
            &summary.failures()[0],
            RuntimeError::Shed { query, reason: ShedReason::AliveCount } if *query == id
        ));
    }

    /// Runs `cfg` with 1 and 4 shards and asserts byte-identical
    /// summaries; returns the 1-shard summary.
    fn shard_invariant(
        cfg: RuntimeConfig,
        submit: impl Fn(&mut Runtime<OverlapModel>),
    ) -> RunSummary {
        let mut base = None;
        for shards in [1usize, 4] {
            let mut rt = runtime_with(RuntimeConfig {
                shards,
                ..cfg.clone()
            });
            submit(&mut rt);
            let s = rt.run_to_completion().unwrap();
            match &base {
                None => base = Some(s),
                Some(b) => {
                    assert_eq!(b.digest(), s.digest(), "diverged at shards={shards}");
                    assert_eq!(
                        b.faults, s.faults,
                        "fault trace diverged at shards={shards}"
                    );
                }
            }
        }
        base.unwrap()
    }

    #[test]
    fn retry_at_the_exact_deadline_instant_loses_to_the_deadline() {
        // Crash everything at t=1; backoff_base 2.0 parks the lost work
        // with a retry at exactly t=3.0, which is also the query's
        // deadline instant (arrival 0 + deadline 3). The event order at
        // the shared barrier is fixed: the retry fires first (step 4,
        // re-packing onto the recovered sites), the deadline expires
        // after (step 6) — so the trace shows a re-pack and then the
        // abort at the same instant, identically at every shard count.
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![
                crash(1.0, 0),
                crash(1.0, 1),
                crash(1.0, 2),
                crash(1.0, 3),
                recover(2.5, 0),
                recover(2.5, 1),
                recover(2.5, 2),
                recover(2.5, 3),
            ]),
            deadline: Some(3.0),
            recovery: RecoveryConfig {
                backoff_base: 2.0,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let summary = shard_invariant(cfg, |rt| {
            rt.submit_at(0.0, 0, one_op_problem(40.0));
        });
        match &summary.queries[0].outcome {
            Some(QueryOutcome::Aborted { reason }) => {
                assert!(reason.contains("deadline"), "{reason}");
            }
            other => panic!("expected deadline abort, got {other:?}"),
        }
        // The retry's re-pack and the abort share t=3.0, in that order.
        let at_deadline: Vec<&FaultRecordKind> = summary
            .faults
            .iter()
            .filter(|r| r.time == 3.0)
            .map(|r| &r.kind)
            .collect();
        assert!(
            matches!(at_deadline.first(), Some(FaultRecordKind::Repacked { .. })),
            "{at_deadline:?}"
        );
        assert!(
            matches!(at_deadline.last(), Some(FaultRecordKind::Aborted { .. })),
            "{at_deadline:?}"
        );
        assert!((summary.horizon - 3.0).abs() < 1e-12);
    }

    #[test]
    fn retry_into_a_momentarily_empty_alive_set_reparks_and_recovers() {
        // The first retry (t=1.5) fires while every site is still down:
        // nothing is packable, so the work re-parks with a doubled
        // backoff (next at t=2.5) instead of aborting. The fleet comes
        // back at t=2.0 and the second retry lands the re-pack.
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![
                crash(1.0, 0),
                crash(1.0, 1),
                crash(1.0, 2),
                crash(1.0, 3),
                recover(2.0, 0),
                recover(2.0, 1),
                recover(2.0, 2),
                recover(2.0, 3),
            ]),
            recovery: RecoveryConfig {
                backoff_base: 0.5,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let summary = shard_invariant(cfg, |rt| {
            rt.submit_at(0.0, 0, one_op_problem(40.0));
        });
        assert_eq!(summary.queries[0].outcome, Some(QueryOutcome::Completed));
        let retries: Vec<f64> = summary
            .faults
            .iter()
            .filter_map(|r| match r.kind {
                FaultRecordKind::RetryScheduled { at, .. } => Some(at),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![1.5, 2.5], "re-park doubles the backoff");
        assert!(summary.repacks() > 0);
        assert!(summary.queries[0].finish.unwrap() > 2.5);
    }

    #[test]
    fn backoff_exhaustion_one_event_before_the_restore_still_aborts() {
        // max_retries 1: the lost work parks once (retry at t=1.5), and
        // that retry fires into a dead fleet with the cap exhausted —
        // abort at 1.5. The restore at t=1.6 is one event too late, and
        // must not resurrect the aborted query (its retries are purged).
        let cfg = RuntimeConfig {
            faults: FaultPlan::scripted(vec![
                crash(1.0, 0),
                crash(1.0, 1),
                crash(1.0, 2),
                crash(1.0, 3),
                recover(1.6, 0),
                recover(1.6, 1),
                recover(1.6, 2),
                recover(1.6, 3),
            ]),
            recovery: RecoveryConfig {
                max_retries: 1,
                backoff_base: 0.5,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let summary = shard_invariant(cfg, |rt| {
            rt.submit_at(0.0, 0, one_op_problem(40.0));
        });
        match &summary.queries[0].outcome {
            Some(QueryOutcome::Aborted { reason }) => {
                assert!(reason.contains("retries exhausted"), "{reason}");
            }
            other => panic!("expected exhaustion abort, got {other:?}"),
        }
        let abort_time = summary
            .faults
            .iter()
            .find_map(|r| match r.kind {
                FaultRecordKind::Aborted { .. } => Some(r.time),
                _ => None,
            })
            .expect("abort recorded");
        assert!((abort_time - 1.5).abs() < 1e-12);
        // The run ends at the abort: with no live work left, the
        // scripted restores never stretch the horizon.
        assert!((summary.horizon - 1.5).abs() < 1e-12);
    }

    fn overload_controller() -> ControllerConfig {
        ControllerConfig {
            enabled: true,
            load_high: 0.05,
            load_low: 0.01,
            backlog_high: 3,
            backlog_low: 0,
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn adaptive_controller_defers_and_governs_under_overload() {
        use crate::control::ControlAction;
        use crate::trace::audit_control_transition;
        let cfg = RuntimeConfig {
            max_in_flight: 2,
            controller: overload_controller(),
            ..RuntimeConfig::default()
        };
        let summary = shard_invariant(cfg.clone(), |rt| {
            for q in 0..12 {
                rt.submit_at(q as f64 * 0.2, q % 3, one_op_problem(20.0));
            }
        });
        // Backpressure defers, never sheds: everything completes.
        assert_eq!(summary.completed(), 12);
        assert_eq!(summary.shed(), 0);
        // The controller actually moved: the gate engaged and the
        // governor raised at least one level.
        let decisions: Vec<_> = summary
            .trace
            .iter()
            .filter_map(|ev| match ev {
                AuditEvent::ControlDecision {
                    action,
                    level,
                    gate,
                    sample,
                    ..
                } => Some((*action, *level, *gate, *sample)),
                _ => None,
            })
            .collect();
        assert!(
            decisions
                .iter()
                .any(|(a, ..)| *a == ControlAction::EngageGate),
            "gate never engaged: {decisions:?}"
        );
        assert!(
            decisions
                .iter()
                .any(|(a, ..)| *a == ControlAction::RaiseLevel),
            "governor never raised: {decisions:?}"
        );
        // In-crate replay: every decision is one valid hysteresis step
        // from the replayed state AND justified by its own snapshot.
        let (mut level, mut gate) = (0u32, false);
        for (action, rec_level, rec_gate, sample) in &decisions {
            assert!(
                audit_control_transition(level, gate, *action, *rec_level, *rec_gate),
                "invalid step {action:?} from level {level}"
            );
            assert!(
                cfg.controller.justifies(*action, sample, level),
                "unjustified {action:?} at {sample:?}"
            );
            level = *rec_level;
            gate = *rec_gate;
        }
        // The governed cap re-keys the cache: one template planned at
        // more than one level means more than one miss.
        assert!(
            summary.cache.misses > 1,
            "expected per-level plans, got {:?}",
            summary.cache
        );
        assert_eq!(summary.cache.hits + summary.cache.misses, 12);
    }

    #[test]
    fn controller_last_resort_sheds_with_the_recorded_reason() {
        let cfg = RuntimeConfig {
            max_in_flight: 1,
            controller: ControllerConfig {
                shed_queue: Some(3),
                ..overload_controller()
            },
            ..RuntimeConfig::default()
        };
        let summary = shard_invariant(cfg, |rt| {
            for q in 0..10 {
                rt.submit_at(q as f64 * 0.1, 0, one_op_problem(20.0));
            }
        });
        assert!(summary.shed() > 0, "queue bound must fire");
        assert_eq!(
            summary.shed(),
            summary.shed_for(ShedReason::ControllerLastResort),
            "every shed carries the controller reason"
        );
        assert!(summary.failures().iter().any(|f| matches!(
            f,
            RuntimeError::Shed {
                reason: ShedReason::ControllerLastResort,
                ..
            }
        )));
        // The fault trace records the reason too.
        assert!(summary.faults.iter().any(|r| matches!(
            r.kind,
            FaultRecordKind::Shed {
                reason: ShedReason::ControllerLastResort,
                ..
            }
        )));
        // Completed + shed partition the stream.
        assert_eq!(summary.completed() + summary.shed(), 10);
    }

    #[test]
    fn disabled_controller_leaves_no_trace() {
        // Same overload, controller off: no decisions, no governed
        // plans (one template = one miss), nothing shed.
        let cfg = RuntimeConfig {
            max_in_flight: 2,
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        for q in 0..12 {
            rt.submit_at(q as f64 * 0.2, q % 3, one_op_problem(20.0));
        }
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 12);
        assert!(
            !summary
                .trace
                .iter()
                .any(|ev| matches!(ev, AuditEvent::ControlDecision { .. })),
            "disabled controller recorded a decision"
        );
        assert_eq!(summary.cache.misses, 1, "one template, one plan");
    }

    #[test]
    fn straggler_site_stretches_service() {
        let fast = {
            let mut rt = Runtime::new(
                SystemSpec::homogeneous(1),
                CommModel::paper_defaults(),
                OverlapModel::new(0.5).unwrap(),
                RuntimeConfig::default(),
            );
            rt.submit_at(0.0, 0, one_op_problem(10.0));
            rt.run_to_completion().unwrap()
        };
        let slow = {
            let cfg = RuntimeConfig {
                faults: FaultPlan::none().with_slowdown(0, 0.5),
                ..RuntimeConfig::default()
            };
            let mut rt = Runtime::new(
                SystemSpec::homogeneous(1),
                CommModel::paper_defaults(),
                OverlapModel::new(0.5).unwrap(),
                cfg,
            );
            rt.submit_at(0.0, 0, one_op_problem(10.0));
            rt.run_to_completion().unwrap()
        };
        let f = fast.queries[0].service().unwrap();
        let s = slow.queries[0].service().unwrap();
        assert!(
            (s - 2.0 * f).abs() < 1e-9,
            "half-speed site must double service: fast {f}, slow {s}"
        );
    }

    #[test]
    fn templated_stream_hits_the_schedule_cache() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 2);
        for q in 0..6 {
            rt.submit_at(q as f64 * 5.0, 0, one_op_problem(10.0));
        }
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 6);
        // One template: the first admission plans, the other five hit.
        assert_eq!(summary.cache.misses, 1);
        assert_eq!(summary.cache.hits, 5);
        assert_eq!(summary.plans_computed(), 1);
        assert!((summary.cache_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hits_are_bit_identical_to_fresh_plans() {
        // verify_cache shadow-computes every hit and panics on any
        // digest mismatch, so a clean run *is* the assertion.
        let cfg = RuntimeConfig {
            verify_cache: true,
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        for q in 0..5 {
            rt.submit_at(q as f64 * 3.0, 0, one_op_problem(8.0));
        }
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 5);
        assert!(summary.cache.hits >= 1, "shadow check needs hits to check");
    }

    #[test]
    fn caching_never_changes_the_trajectory() {
        let run = |cache: bool| {
            let cfg = RuntimeConfig {
                schedule_cache: cache,
                faults: FaultPlan::seeded(4, 400.0, 20.0, 5.0, 7),
                ..RuntimeConfig::default()
            };
            let mut rt = runtime_with(cfg);
            for q in 0..10 {
                rt.submit_at(q as f64 * 4.0, q % 3, one_op_problem(6.0 + (q % 4) as f64));
            }
            rt.run_to_completion().unwrap()
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.horizon.to_bits(), off.horizon.to_bits());
        for (a, b) in on.queries.iter().zip(&off.queries) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(
                a.finish.map(f64::to_bits),
                b.finish.map(f64::to_bits),
                "{} finish drifted with caching",
                a.id
            );
        }
        // Only the planning counters differ.
        assert_eq!(off.cache.hits, 0);
        assert_eq!(off.plans_computed(), on.cache.hits + on.cache.misses);
    }

    #[test]
    fn crash_bumps_the_cache_epoch_and_forces_replanning() {
        // Same template before and after a crash of a site in the
        // plan's footprint: the bump must stale the memoized plan, so
        // the post-crash admission re-plans (a miss plus a stale
        // eviction) rather than hitting.
        let cfg = RuntimeConfig {
            max_in_flight: 1,
            faults: FaultPlan::scripted(vec![crash(1.0, 3)]),
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        rt.submit_at(0.0, 0, one_op_problem(10.0));
        rt.submit_at(0.5, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.sites_failed(), 1);
        assert_eq!(summary.cache.epoch_bumps, 1);
        // Both admissions planned fresh: the second query was queued
        // behind MPL=1 and only admitted after the crash staled the
        // entry (the floating plan spreads over every site, so site 3
        // is in its footprint).
        assert_eq!(summary.cache.misses, 2);
        assert_eq!(summary.cache.hits, 0);
        assert_eq!(summary.cache.stale_evictions, 1);
    }

    #[test]
    fn crash_outside_the_footprint_keeps_the_cached_plan() {
        // A plan rooted on site 0 never touches site 3: the crash still
        // bumps the epoch, but partial invalidation keeps the entry
        // servable and the second admission hits.
        use mrs_core::operator::Placement;
        let rooted = |cpu: f64| {
            let mut p = one_op_problem(cpu);
            p.ops[0].placement = Placement::Rooted(vec![SiteId(0)]);
            p
        };
        let cfg = RuntimeConfig {
            max_in_flight: 1,
            faults: FaultPlan::scripted(vec![crash(1.0, 3)]),
            verify_cache: true,
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        rt.submit_at(0.0, 0, rooted(10.0));
        rt.submit_at(0.5, 0, rooted(10.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.sites_failed(), 1);
        assert_eq!(summary.cache.epoch_bumps, 1, "the crash still bumps");
        assert_eq!(summary.cache.misses, 1, "only the first admission plans");
        assert_eq!(summary.cache.hits, 1, "untouched footprint stays servable");
        assert_eq!(summary.cache.stale_evictions, 0);
    }

    #[test]
    fn every_query_reaches_a_terminal_outcome() {
        let cfg = RuntimeConfig {
            faults: FaultPlan::seeded(4, 200.0, 8.0, 2.0, 42),
            deadline: Some(200.0),
            recovery: RecoveryConfig {
                max_retries: 3,
                degrade_threshold: 0.3,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        for q in 0..8 {
            rt.submit_at(q as f64 * 2.0, q % 3, one_op_problem(6.0 + q as f64));
        }
        let summary = rt.run_to_completion().unwrap();
        for rec in &summary.queries {
            assert!(rec.outcome.is_some(), "{} has no terminal outcome", rec.id);
        }
        assert_eq!(
            summary.completed() + summary.aborted() + summary.shed(),
            summary.queries.len(),
            "outcomes must partition the query set"
        );
        assert_eq!(rt.total_resident(), 0);
    }

    /// A three-task probe chain whose deepest task's work is drawn from
    /// `leaf_seed` and the rest from `top_seed`: two problems sharing
    /// `leaf_seed` share the deepest subtree's signature bit-for-bit
    /// while differing above it.
    fn chain_problem(leaf_seed: u64, top_seed: u64) -> TreeProblem {
        use mrs_core::rng::DetRng;
        use mrs_core::tasks::{HomeBinding, TaskId, TaskNode};
        let depth = 3usize;
        let mut ops: Vec<OperatorSpec> = Vec::new();
        let mut tasks = Vec::new();
        let mut bindings = Vec::new();
        let mut rng_leaf = DetRng::seed_from_u64(leaf_seed);
        let mut rng_top = DetRng::seed_from_u64(top_seed);
        for level in 0..depth {
            let rng = if level + 1 == depth {
                &mut rng_leaf
            } else {
                &mut rng_top
            };
            let a = ops.len();
            let w = rng.gen_range(1.0..4.0f64);
            let v = rng.gen_range(1e5..1e6f64);
            ops.push(OperatorSpec::floating(
                OperatorId(a),
                OperatorKind::Scan,
                WorkVector::from_slice(&[w, w / 2.0, 0.0]),
                v,
            ));
            ops.push(OperatorSpec::floating(
                OperatorId(a + 1),
                OperatorKind::Build,
                WorkVector::from_slice(&[w / 3.0, 0.0, 0.0]),
                v,
            ));
            tasks.push(TaskNode {
                ops: vec![OperatorId(a), OperatorId(a + 1)],
                parent: if level == 0 {
                    None
                } else {
                    Some(TaskId(level - 1))
                },
            });
            if level > 0 {
                let probe = ops.len();
                let pw = if level + 1 == depth {
                    2.5
                } else {
                    rng_top.gen_range(1.0..3.0f64)
                };
                ops.push(OperatorSpec::floating(
                    OperatorId(probe),
                    OperatorKind::Probe,
                    WorkVector::from_slice(&[pw, 0.0, 0.0]),
                    v,
                ));
                tasks[level - 1].ops.push(OperatorId(probe));
                bindings.push(HomeBinding {
                    dependent: OperatorId(probe),
                    source: OperatorId(a + 1),
                });
            }
        }
        let p = TreeProblem {
            ops,
            tasks: TaskGraph::new(tasks).unwrap(),
            bindings,
        };
        p.validate().unwrap();
        p
    }

    #[test]
    fn batch_window_releases_full_windows_and_flushes_the_tail() {
        let cfg = RuntimeConfig {
            batch_window: 3,
            max_in_flight: 8,
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let ids: Vec<_> = (0..5)
            .map(|q| rt.submit_at(0.0, q % 2, one_op_problem(10.0 + q as f64)))
            .collect();
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 5);
        // One full window of 3, then the 2-query tail flushed because
        // the arrival stream was exhausted.
        assert_eq!(summary.cache.batches_released, 2);
        assert_eq!(summary.cache.batch_members, 5);
        // FCFS release keeps submission order: starts are non-decreasing
        // in id order.
        let starts: Vec<f64> = ids
            .iter()
            .map(|id| summary.queries[id.0].start.unwrap())
            .collect();
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "batched FCFS must preserve submission order: {starts:?}"
        );
    }

    #[test]
    fn batch_window_waits_for_the_window_before_releasing() {
        // Window of 2 and one query in flight at a time: the second
        // arrival completes the window, so neither starts before t=5.
        let cfg = RuntimeConfig {
            batch_window: 2,
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let a = rt.submit_at(0.0, 0, one_op_problem(10.0));
        let b = rt.submit_at(5.0, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 2);
        assert_eq!(summary.queries[a.0].start, Some(5.0), "held for the window");
        assert_eq!(summary.queries[b.0].start, Some(5.0));
        assert_eq!(summary.cache.batches_released, 1);
        assert_eq!(summary.cache.batch_members, 2);
    }

    #[test]
    fn plan_sharing_splices_common_subtrees_across_a_batch() {
        let run = |plan_sharing: bool| {
            let cfg = RuntimeConfig {
                batch_window: 4,
                plan_sharing,
                max_in_flight: 8,
                ..RuntimeConfig::default()
            };
            let mut rt = runtime_with(cfg);
            // Four distinct templates sharing one deep subtree: the
            // whole-plan cache never hits, so sharing is the only
            // source of reuse.
            for q in 0..4u64 {
                rt.submit_at(0.0, q as usize % 2, chain_problem(11, 100 + q));
            }
            rt.run_to_completion().unwrap()
        };
        let shared = run(true);
        let unshared = run(false);
        assert_eq!(shared.completed(), 4);
        assert_eq!(shared.cache.hits, 0, "templates differ above the leaf");
        assert!(
            shared.cache.subtree_hits >= 3,
            "later members must splice the shared leaf subtree: {:?}",
            shared.cache
        );
        assert!(shared.cache.fragments_spliced > 0);
        // Sharing strictly reduces the pipelines actually packed.
        assert!(
            shared.cache.tasks_planned < unshared.cache.tasks_planned,
            "shared {} vs unshared {}",
            shared.cache.tasks_planned,
            unshared.cache.tasks_planned
        );
        assert_eq!(unshared.cache.subtree_hits, 0);
        assert_eq!(unshared.cache.fragments_spliced, 0);
        // The audit trace records every splice and fragment insert.
        let splices = shared
            .trace
            .iter()
            .filter(|e| matches!(e, AuditEvent::FragmentSpliced { .. }))
            .count() as u64;
        assert_eq!(splices, shared.cache.subtree_hits);
        assert!(!unshared.trace.iter().any(|e| matches!(
            e,
            AuditEvent::FragmentSpliced { .. } | AuditEvent::FragmentInsert { .. }
        )));
    }

    #[test]
    fn shared_plans_are_bit_identical_warm_or_cold() {
        // verify_cache shadow-replans every whole-plan hit with a cold
        // fragment cache; a clean run asserts warm == cold bit-for-bit.
        let cfg = RuntimeConfig {
            batch_window: 3,
            plan_sharing: true,
            verify_cache: true,
            max_in_flight: 8,
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        for q in 0..6u64 {
            // Two whole-plan templates, so the second batch hits the
            // whole-plan cache and exercises the shared-mode shadow.
            rt.submit_at(q as f64, 0, chain_problem(7, 50 + q % 2));
        }
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 6);
        assert!(summary.cache.hits >= 1, "shadow check needs hits to check");
        assert!(summary.cache.subtree_hits >= 1);
    }

    #[test]
    fn batched_sharing_is_shard_invariant() {
        let cfg = RuntimeConfig {
            batch_window: 3,
            plan_sharing: true,
            max_in_flight: 2,
            ..RuntimeConfig::default()
        };
        let summary = shard_invariant(cfg, |rt| {
            for q in 0..6u64 {
                rt.submit_at(
                    (q / 3) as f64 * 2.0,
                    q as usize % 3,
                    chain_problem(5, 30 + q % 3),
                );
            }
        });
        assert_eq!(summary.completed(), 6);
        assert!(summary.cache.subtree_hits > 0);
    }

    #[test]
    fn deadline_aborts_released_but_unstarted_queries() {
        // MPL 1: the second query is released (planned) with the first
        // but cannot start until the first finishes, which is past its
        // deadline — it must abort cleanly out of the staging buffer.
        let cfg = RuntimeConfig {
            batch_window: 2,
            max_in_flight: 1,
            deadline: Some(1.0),
            ..RuntimeConfig::default()
        };
        let mut rt = runtime_with(cfg);
        let a = rt.submit_at(0.0, 0, one_op_problem(40.0));
        let b = rt.submit_at(0.0, 0, one_op_problem(40.0));
        let summary = rt.run_to_completion().unwrap();
        let (ra, rb) = (&summary.queries[a.0], &summary.queries[b.0]);
        assert!(
            matches!(ra.outcome, Some(QueryOutcome::Aborted { .. })),
            "a exceeds 1.0 too: {:?}",
            ra.outcome
        );
        assert!(
            matches!(rb.outcome, Some(QueryOutcome::Aborted { .. })),
            "{:?}",
            rb.outcome
        );
        assert!(rb.start.is_none(), "b never left the staging buffer");
        assert_eq!(rt.total_resident(), 0);
    }
}
