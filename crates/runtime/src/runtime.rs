//! The event-driven online scheduler.
//!
//! [`Runtime`] admits a stream of [`TreeProblem`]s, queues them under an
//! [`AdmissionPolicy`](crate::admission::AdmissionPolicy), and dispatches
//! each admitted query's TreeSchedule *phase by phase* onto `P` shared
//! fluid sites ([`SiteSim`]). Virtual time advances from event to event —
//! the next arrival or the earliest clone completion anywhere — so
//! concurrent queries genuinely time-share sites: a site running clones
//! of two queries stretches both according to the simulator's sharing
//! discipline, and the runtime observes the stretched completion times.
//!
//! Determinism: every queue decision is tie-broken by submission sequence
//! numbers, completions are processed in `(time, tag)` order, and sites
//! are advanced in index order. Two runs over the same submissions
//! produce identical traces.

use crate::admission::AdmissionQueue;
use crate::job::{work_volume, QueryId, QueryRecord};
use crate::ledger::SiteLedger;
use crate::metrics::RunSummary;
use mrs_core::comm::CommModel;
use mrs_core::error::ScheduleError;
use mrs_core::model::ResponseModel;
use mrs_core::resource::{SiteId, SystemSpec};
use mrs_core::tree::{tree_schedule, TreeProblem, TreeScheduleResult};
use mrs_sim::engine::{Completion, SimClone, SimConfig, SiteSim};
use std::collections::HashMap;
use std::fmt;

/// Why a runtime run failed.
#[derive(Debug)]
pub enum RuntimeError {
    /// A query could not be scheduled at admission time.
    Schedule {
        /// The query whose TreeSchedule failed.
        query: QueryId,
        /// The underlying scheduling error.
        source: ScheduleError,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Schedule { query, source } => {
                write!(f, "scheduling {query} at admission failed: {source}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Runtime configuration knobs.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Granularity parameter `f` passed to TreeSchedule at admission.
    pub f: f64,
    /// Admission-queue ordering.
    pub policy: crate::admission::AdmissionPolicy,
    /// Multiprogramming level: max queries executing concurrently.
    /// Must be at least 1.
    pub max_in_flight: usize,
    /// Optional ledger gate: with queries already running, admit another
    /// only while the mean committed `l_∞` site load stays below this.
    /// `None` disables the gate (MPL cap alone governs admission). The
    /// gate never applies to an idle system, so it cannot deadlock.
    pub load_threshold: Option<f64>,
    /// Fluid-site sharing discipline and overhead.
    pub sim: SimConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            f: 0.7,
            policy: crate::admission::AdmissionPolicy::Fcfs,
            max_in_flight: 4,
            load_threshold: None,
            sim: SimConfig::default(),
        }
    }
}

struct ArrivalEvent {
    time: f64,
    id: QueryId,
    problem: TreeProblem,
}

struct RunningQuery {
    schedule: TreeScheduleResult,
    /// Index of the next phase to dispatch.
    next_phase: usize,
    /// Clones of the current phase still executing.
    outstanding: usize,
}

struct CloneInfo {
    query: QueryId,
    site: SiteId,
    demand: Vec<f64>,
}

/// The online multi-query scheduler. See the [module docs](self).
pub struct Runtime<M: ResponseModel> {
    sys: SystemSpec,
    comm: CommModel,
    model: M,
    cfg: RuntimeConfig,
    clock: f64,
    queue: AdmissionQueue,
    arrivals: Vec<ArrivalEvent>,
    pending: HashMap<QueryId, TreeProblem>,
    sims: Vec<SiteSim>,
    ledger: SiteLedger,
    running: HashMap<QueryId, RunningQuery>,
    clones: HashMap<usize, CloneInfo>,
    next_tag: usize,
    records: Vec<QueryRecord>,
    depth_trace: Vec<(f64, usize)>,
}

impl<M: ResponseModel> Runtime<M> {
    /// A fresh runtime over `sys` with the given communication and
    /// response-time models.
    ///
    /// # Panics
    /// If `cfg.max_in_flight == 0` (nothing could ever run).
    pub fn new(sys: SystemSpec, comm: CommModel, model: M, cfg: RuntimeConfig) -> Self {
        assert!(cfg.max_in_flight >= 1, "max_in_flight must be at least 1");
        let d = sys.dim();
        let sims = (0..sys.sites).map(|_| SiteSim::new(cfg.sim, d)).collect();
        let ledger = SiteLedger::new(sys.sites, d);
        let queue = AdmissionQueue::new(cfg.policy);
        Runtime {
            sys,
            comm,
            model,
            cfg,
            clock: 0.0,
            queue,
            arrivals: Vec::new(),
            pending: HashMap::new(),
            sims,
            ledger,
            running: HashMap::new(),
            clones: HashMap::new(),
            next_tag: 0,
            records: Vec::new(),
            depth_trace: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The site ledger (scheduler-facing committed-demand view).
    pub fn ledger(&self) -> &SiteLedger {
        &self.ledger
    }

    /// Submits `problem` from `client`, arriving at virtual time
    /// `arrival` (must not precede the current clock). Returns the dense
    /// query id.
    pub fn submit_at(&mut self, arrival: f64, client: usize, problem: TreeProblem) -> QueryId {
        assert!(
            arrival >= self.clock,
            "arrival {arrival} precedes current virtual time {}",
            self.clock
        );
        let id = QueryId(self.records.len());
        let volume = work_volume(&problem);
        self.records
            .push(QueryRecord::new(id, client, volume, arrival));
        self.arrivals.push(ArrivalEvent {
            time: arrival,
            id,
            problem,
        });
        id
    }

    /// Runs the event loop until every submitted query has completed,
    /// then returns the aggregated [`RunSummary`].
    ///
    /// # Errors
    /// [`RuntimeError::Schedule`] if a query's TreeSchedule fails at
    /// admission (e.g. a malformed task graph); queries admitted before
    /// the failure keep their partial progress.
    pub fn run_to_completion(&mut self) -> Result<RunSummary, RuntimeError> {
        // Arrivals in (time, id) order; ids are dense so ties (equal
        // times) resolve in submission order.
        self.arrivals
            .sort_by(|a, b| a.time.total_cmp(&b.time).then(a.id.cmp(&b.id)));
        let mut completions: Vec<Completion> = Vec::new();

        loop {
            let next_arrival = self.arrivals.first().map(|a| a.time);
            let next_completion = self
                .sims
                .iter()
                .filter_map(SiteSim::next_completion_time)
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.min(t)))
                });
            let t = match (next_arrival, next_completion) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break,
            };

            // 1. Advance every site to t, collecting completions. A site
            //    completion event strictly before t cannot exist: t is the
            //    global minimum.
            completions.clear();
            for sim in &mut self.sims {
                sim.advance_to(t, &mut completions);
            }
            self.clock = t;
            completions.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.tag.cmp(&b.tag)));

            // 2. Retire completed clones; queries whose phase drained
            //    dispatch their next phase (or finish).
            for done in completions.drain(..) {
                let info = self
                    .clones
                    .remove(&done.tag)
                    .expect("completion for unknown clone tag");
                self.ledger.release(info.site, &info.demand);
                let rq = self
                    .running
                    .get_mut(&info.query)
                    .expect("completion for query not running");
                rq.outstanding -= 1;
                if rq.outstanding == 0 {
                    self.advance_query(info.query);
                }
            }

            // 3. Enqueue arrivals due at t.
            while self.arrivals.first().is_some_and(|a| a.time <= t) {
                let ev = self.arrivals.remove(0);
                let rec = &self.records[ev.id.0];
                self.queue.push(ev.id, rec.client, rec.volume);
                self.pending.insert(ev.id, ev.problem);
            }

            // 4. Admit while capacity allows.
            self.try_admit()?;

            self.depth_trace.push((t, self.queue.len()));
        }

        Ok(self.summary())
    }

    /// Dispatches phases of `id` starting at `next_phase` until one has
    /// executing clones or the query finishes. Phases whose clones all
    /// have zero duration complete inline at the current clock.
    fn advance_query(&mut self, id: QueryId) {
        loop {
            let rq = self.running.get_mut(&id).expect("query not running");
            if rq.next_phase == rq.schedule.phases.len() {
                self.records[id.0].finish = Some(self.clock);
                self.running.remove(&id);
                return;
            }
            let phase_idx = rq.next_phase;
            rq.next_phase += 1;

            // Collect the phase's clone placements first (borrow of the
            // schedule ends before we mutate sims/ledger).
            let placements: Vec<(SiteId, mrs_core::vector::WorkVector)> = {
                let phase = &self.running[&id].schedule.phases[phase_idx];
                phase
                    .schedule
                    .ops
                    .iter()
                    .zip(&phase.schedule.assignment.homes)
                    .flat_map(|(op, homes)| {
                        homes
                            .iter()
                            .zip(&op.clones)
                            .map(|(site, work)| (*site, work.clone()))
                    })
                    .collect()
            };

            let mut outstanding = 0usize;
            for (site, work) in placements {
                let duration = self.model.t_seq(&work);
                let tag = self.next_tag;
                self.next_tag += 1;
                let clone = SimClone {
                    tag,
                    work: work.clone(),
                    duration,
                };
                if self.sims[site.0].add_clone(&clone).is_some() {
                    // Zero-duration clone: completed inline, nothing to
                    // track.
                    continue;
                }
                let demand: Vec<f64> = work.components().iter().map(|w| w / duration).collect();
                self.ledger.commit(site, &demand);
                self.clones.insert(
                    tag,
                    CloneInfo {
                        query: id,
                        site,
                        demand,
                    },
                );
                outstanding += 1;
            }
            if outstanding > 0 {
                self.running
                    .get_mut(&id)
                    .expect("query not running")
                    .outstanding = outstanding;
                return;
            }
            // All-zero phase: fall through and dispatch the next one at
            // the same instant.
        }
    }

    /// Admits queued queries while the MPL cap (and, for a busy system,
    /// the optional ledger load gate) allows.
    fn try_admit(&mut self) -> Result<(), RuntimeError> {
        while self.running.len() < self.cfg.max_in_flight && !self.queue.is_empty() {
            if !self.running.is_empty() {
                if let Some(thr) = self.cfg.load_threshold {
                    if self.ledger.avg_load() >= thr {
                        break;
                    }
                }
            }
            let id = self.queue.pop().expect("queue checked non-empty");
            let problem = self
                .pending
                .remove(&id)
                .expect("admitted query has no pending problem");
            let schedule = tree_schedule(&problem, self.cfg.f, &self.sys, &self.comm, &self.model)
                .map_err(|source| RuntimeError::Schedule { query: id, source })?;
            let rec = &mut self.records[id.0];
            rec.start = Some(self.clock);
            rec.phases = schedule.phases.len();
            rec.standalone_response = schedule.response_time;
            self.running.insert(
                id,
                RunningQuery {
                    schedule,
                    next_phase: 0,
                    outstanding: 0,
                },
            );
            self.advance_query(id);
        }
        Ok(())
    }

    fn summary(&self) -> RunSummary {
        let horizon = self.clock;
        let site_busy: Vec<Vec<f64>> = self.sims.iter().map(|s| s.busy().to_vec()).collect();
        RunSummary::new(
            self.cfg.policy.label(),
            horizon,
            self.records.clone(),
            site_busy,
            self.depth_trace.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use mrs_core::operator::{OperatorId, OperatorKind, OperatorSpec};
    use mrs_core::prelude::OverlapModel;
    use mrs_core::tasks::TaskGraph;
    use mrs_core::vector::WorkVector;

    fn one_op_problem(cpu: f64) -> TreeProblem {
        let op = OperatorSpec::floating(
            OperatorId(0),
            OperatorKind::Scan,
            WorkVector::from_slice(&[cpu, cpu / 2.0, 0.0]),
            1_000_000.0,
        );
        TreeProblem {
            ops: vec![op],
            tasks: TaskGraph::single_task(vec![OperatorId(0)]),
            bindings: vec![],
        }
    }

    fn runtime(policy: AdmissionPolicy, mpl: usize) -> Runtime<OverlapModel> {
        let cfg = RuntimeConfig {
            policy,
            max_in_flight: mpl,
            ..RuntimeConfig::default()
        };
        Runtime::new(
            SystemSpec::homogeneous(4),
            CommModel::paper_defaults(),
            OverlapModel::new(0.5).unwrap(),
            cfg,
        )
    }

    #[test]
    fn empty_run_completes_immediately() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 2);
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 0);
        assert_eq!(summary.horizon, 0.0);
    }

    #[test]
    fn single_query_runs_and_finishes() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 2);
        let id = rt.submit_at(1.0, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.completed(), 1);
        let rec = &summary.queries[id.0];
        assert_eq!(rec.start, Some(1.0));
        assert!(rec.finish.unwrap() > 1.0);
        assert!((rec.service().unwrap() - rec.standalone_response).abs() < 1e-9);
        // Ledger drained.
        assert_eq!(rt.ledger().total_resident(), 0);
    }

    #[test]
    fn mpl_cap_queues_excess_queries() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 1);
        let a = rt.submit_at(0.0, 0, one_op_problem(10.0));
        let b = rt.submit_at(0.0, 0, one_op_problem(10.0));
        let summary = rt.run_to_completion().unwrap();
        let (ra, rb) = (&summary.queries[a.0], &summary.queries[b.0]);
        // b waited for a to finish.
        assert_eq!(rb.start, ra.finish);
        assert!(rb.wait().unwrap() > 0.0);
        assert_eq!(summary.max_queue_depth(), 1);
    }

    #[test]
    fn late_arrival_respected() {
        let mut rt = runtime(AdmissionPolicy::Fcfs, 4);
        let id = rt.submit_at(100.0, 0, one_op_problem(5.0));
        let summary = rt.run_to_completion().unwrap();
        assert_eq!(summary.queries[id.0].start, Some(100.0));
    }

    #[test]
    #[should_panic(expected = "max_in_flight")]
    fn zero_mpl_rejected() {
        let cfg = RuntimeConfig {
            max_in_flight: 0,
            ..RuntimeConfig::default()
        };
        let _ = Runtime::new(
            SystemSpec::homogeneous(2),
            CommModel::paper_defaults(),
            OverlapModel::new(0.5).unwrap(),
            cfg,
        );
    }
}
