//! Adaptive overload control: a deterministic feedback controller that
//! trades intra-query parallelism against inter-query concurrency as
//! system pressure moves.
//!
//! The paper's schedulers hand every query its optimal clone degrees
//! regardless of load; under heavy arrival rates the runtime's only
//! defenses used to be shed-at-arrival and deadline aborts. The
//! [`Controller`] observes pressure signals that already flow through
//! the event loop — admission queue depth, the alive-site mean committed
//! load from the ledger, and retry churn from the recovery path — and
//! actuates two levers:
//!
//! * a **parallelism governor**: a per-admission cap on clone degrees,
//!   applied *below* the paper-optimal `N_max(op, f)` knob before
//!   `schedule_with_degrees` runs (see
//!   [`tree_schedule_capped`](mrs_core::tree::tree_schedule_capped)).
//!   Each governor level halves the cap, so degraded plans spend less of
//!   the EA1 per-clone startup overhead and leave capacity for
//!   concurrent queries. The schedule cache keys on the governed cap, so
//!   degraded and full plans coexist;
//! * a **backpressure admission gate** that *defers* — rather than
//!   sheds — arrivals while the mean alive-site load sits inside the
//!   hysteresis band. Shedding is demoted to the last resort, guarded by
//!   hard bounds ([`ControllerConfig::shed_queue`],
//!   [`ControllerConfig::shed_load`]) that are disabled by default.
//!
//! Both levers move through **monotone hysteresis**: per observation the
//! governor level changes by at most one step (raised only under high
//! pressure, lowered only under low pressure, with `low < high`), and
//! the gate engages at [`ControllerConfig::load_high`] but releases only
//! at [`ControllerConfig::load_low`]. Every state change is recorded as
//! an [`AuditEvent::ControlDecision`](crate::trace::AuditEvent) carrying
//! the signal snapshot that justified it, so `mrs-audit` replays the
//! decision sequence from the trace alone.
//!
//! Determinism: the controller is a pure function of
//! `(state, PressureSample)`. Every signal in the sample is taken from
//! the event loop's serial state (the fabric serializes cross-shard
//! effects), so decisions are bit-exact and `--jobs`/`--shards`
//! invariant. With [`ControllerConfig::enabled`] false (the default) the
//! controller is never consulted and the runtime is byte-identical to
//! its pre-controller behavior.

/// Feedback-controller knobs. Disabled by default; every threshold is a
/// pure constant so the controller stays a deterministic function of the
/// trace-visible state.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Master switch. `false` (default) never consults the controller —
    /// byte-identical to the pre-controller runtime.
    pub enabled: bool,
    /// Mean alive-site load at or above which the backpressure gate
    /// engages and the governor may raise its level.
    pub load_high: f64,
    /// Mean alive-site load at or below which the gate releases and the
    /// governor may lower its level. Must be `< load_high` (hysteresis).
    pub load_low: f64,
    /// Queue-plus-retry backlog at or above which the governor raises
    /// its level (one step per observation).
    pub backlog_high: usize,
    /// Queue-plus-retry backlog at or below which the governor may lower
    /// its level. Must be `< backlog_high`.
    pub backlog_low: usize,
    /// Maximum governor level. Level `k` caps floating clone degrees at
    /// `max(min_cap, sites >> k)`; level 0 is uncapped.
    pub max_level: u32,
    /// Floor for the governed degree cap (≥ 1).
    pub min_cap: usize,
    /// Last-resort shed: refuse an arrival when the queue already holds
    /// this many deferred queries. `None` (default) never sheds on
    /// depth.
    pub shed_queue: Option<usize>,
    /// Last-resort shed: refuse an arrival while the mean alive-site
    /// load sits at or above this. `None` (default) never sheds on load.
    pub shed_load: Option<f64>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            enabled: false,
            load_high: 0.85,
            load_low: 0.55,
            backlog_high: 6,
            backlog_low: 1,
            max_level: 3,
            min_cap: 1,
            shed_queue: None,
            shed_load: None,
        }
    }
}

impl ControllerConfig {
    /// The default knobs with the master switch on — what
    /// `serve --adaptive` and the adaptive arms of the saturation sweep
    /// run.
    pub fn adaptive() -> Self {
        ControllerConfig {
            enabled: true,
            ..ControllerConfig::default()
        }
    }

    /// Panics unless the thresholds form valid hysteresis bands.
    pub fn validate(&self) {
        assert!(
            self.load_low < self.load_high,
            "controller hysteresis requires load_low {} < load_high {}",
            self.load_low,
            self.load_high
        );
        assert!(
            self.backlog_low < self.backlog_high,
            "controller hysteresis requires backlog_low {} < backlog_high {}",
            self.backlog_low,
            self.backlog_high
        );
        assert!(self.min_cap >= 1, "min_cap must be at least 1");
    }

    /// True when `action`, taken from replayed state `prev_level`, is
    /// justified by the recorded `sample` under these thresholds — the
    /// config-aware half of the trace replay (`mrs-audit`'s
    /// controller-coherence family); the structural half is
    /// [`audit_control_transition`](crate::trace::audit_control_transition).
    pub fn justifies(
        &self,
        action: ControlAction,
        sample: &PressureSample,
        prev_level: u32,
    ) -> bool {
        match action {
            ControlAction::EngageGate => sample.avg_load >= self.load_high,
            ControlAction::ReleaseGate => sample.avg_load <= self.load_low,
            ControlAction::RaiseLevel => {
                sample.backlog() >= self.backlog_high && prev_level < self.max_level
            }
            ControlAction::LowerLevel => {
                sample.backlog() <= self.backlog_low
                    && sample.avg_load <= self.load_low
                    && prev_level > 0
            }
        }
    }
}

/// One observation of the pressure signals, taken once per event-loop
/// epoch at the barrier (after faults/retries/arrivals, before
/// admission). All fields are copied from the loop's serial state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PressureSample {
    /// Virtual time of the observation.
    pub time: f64,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Parked recovery retries (re-pack churn).
    pub retries: usize,
    /// Alive sites.
    pub alive: usize,
    /// Mean committed `l_∞` load over the alive sites (the ledger view).
    pub avg_load: f64,
}

impl PressureSample {
    /// The governor's backlog signal: queued arrivals plus parked
    /// retries.
    pub fn backlog(&self) -> usize {
        self.queue_depth + self.retries
    }
}

/// What a controller decision did. Recorded on the audit trace; the
/// discriminant is part of the [`RunSummary::digest`] encoding.
///
/// [`RunSummary::digest`]: crate::metrics::RunSummary::digest
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlAction {
    /// Governor level went up one step (degree cap tightened).
    RaiseLevel,
    /// Governor level came down one step (degree cap relaxed).
    LowerLevel,
    /// Backpressure gate engaged: admissions defer.
    EngageGate,
    /// Backpressure gate released: admissions resume.
    ReleaseGate,
}

impl ControlAction {
    /// Stable digest discriminant.
    pub fn discriminant(&self) -> u8 {
        match self {
            ControlAction::RaiseLevel => 0,
            ControlAction::LowerLevel => 1,
            ControlAction::EngageGate => 2,
            ControlAction::ReleaseGate => 3,
        }
    }

    /// Stable label for traces and CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            ControlAction::RaiseLevel => "raise-level",
            ControlAction::LowerLevel => "lower-level",
            ControlAction::EngageGate => "engage-gate",
            ControlAction::ReleaseGate => "release-gate",
        }
    }
}

/// One state change the controller made, with the signal snapshot that
/// justified it (what the audit trace records).
#[derive(Clone, Debug, PartialEq)]
pub struct ControlDecision {
    /// What changed.
    pub action: ControlAction,
    /// Governor level after the decision.
    pub level: u32,
    /// Gate state after the decision.
    pub gate: bool,
    /// The observation that triggered it.
    pub sample: PressureSample,
}

/// The feedback controller's mutable state: a governor level and a gate
/// bit, both driven by [`Controller::observe`]. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    level: u32,
    gate: bool,
}

impl Controller {
    /// A controller at level 0 with the gate released.
    ///
    /// # Panics
    /// If the config's hysteresis bands are invalid (see
    /// [`ControllerConfig::validate`]).
    pub fn new(cfg: ControllerConfig) -> Self {
        cfg.validate();
        Controller {
            cfg,
            level: 0,
            gate: false,
        }
    }

    /// Whether the master switch is on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The config the controller runs under.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Current governor level (0 = full parallelism).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Whether the backpressure gate currently defers admissions.
    pub fn gate_engaged(&self) -> bool {
        self.gate
    }

    /// The governed clone-degree cap over `sites` sites: `None` at level
    /// 0 (paper-optimal degrees), otherwise
    /// `max(min_cap, sites >> level)`. The governor only ever *lowers*
    /// degrees, so the paper's coarse-grain caps stay satisfied.
    pub fn degree_cap(&self, sites: usize) -> Option<usize> {
        if !self.cfg.enabled || self.level == 0 {
            return None;
        }
        let shifted = sites >> self.level.min(63);
        Some(shifted.max(self.cfg.min_cap))
    }

    /// Feeds one pressure observation through the hysteresis rules and
    /// returns the state changes (at most one gate change and one level
    /// change — monotone: one step per observation). Pure function of
    /// `(state, sample)`; never called when disabled.
    pub fn observe(&mut self, sample: PressureSample) -> Vec<ControlDecision> {
        debug_assert!(self.cfg.enabled, "observe() on a disabled controller");
        let mut out = Vec::new();
        // Gate first: it acts on this epoch's admissions, while a level
        // change only affects plans computed after it.
        if !self.gate && sample.avg_load >= self.cfg.load_high {
            self.gate = true;
            out.push(ControlDecision {
                action: ControlAction::EngageGate,
                level: self.level,
                gate: true,
                sample,
            });
        } else if self.gate && sample.avg_load <= self.cfg.load_low {
            self.gate = false;
            out.push(ControlDecision {
                action: ControlAction::ReleaseGate,
                level: self.level,
                gate: false,
                sample,
            });
        }
        let backlog = sample.backlog();
        if backlog >= self.cfg.backlog_high && self.level < self.cfg.max_level {
            self.level += 1;
            out.push(ControlDecision {
                action: ControlAction::RaiseLevel,
                level: self.level,
                gate: self.gate,
                sample,
            });
        } else if backlog <= self.cfg.backlog_low
            && sample.avg_load <= self.cfg.load_low
            && self.level > 0
        {
            self.level -= 1;
            out.push(ControlDecision {
                action: ControlAction::LowerLevel,
                level: self.level,
                gate: self.gate,
                sample,
            });
        }
        out
    }

    /// Whether an arrival observed at `sample` must be shed as the last
    /// resort (hard bounds exceeded), and why. `None` defers or admits
    /// normally. Checked only while enabled.
    pub fn last_resort_shed(&self, sample: &PressureSample) -> Option<crate::job::ShedReason> {
        if !self.cfg.enabled {
            return None;
        }
        if let Some(limit) = self.cfg.shed_queue {
            if sample.queue_depth >= limit {
                return Some(crate::job::ShedReason::ControllerLastResort);
            }
        }
        if let Some(limit) = self.cfg.shed_load {
            if sample.avg_load >= limit {
                return Some(crate::job::ShedReason::MeanLoad);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(queue: usize, retries: usize, load: f64) -> PressureSample {
        PressureSample {
            time: 1.0,
            queue_depth: queue,
            retries,
            alive: 4,
            avg_load: load,
        }
    }

    fn controller() -> Controller {
        Controller::new(ControllerConfig::adaptive())
    }

    #[test]
    fn disabled_controller_caps_nothing() {
        let c = Controller::new(ControllerConfig::default());
        assert!(!c.enabled());
        assert_eq!(c.degree_cap(64), None);
        assert_eq!(c.last_resort_shed(&sample(100, 0, 10.0)), None);
    }

    #[test]
    fn gate_engages_high_and_releases_low_only() {
        let mut c = controller();
        assert!(!c.gate_engaged());
        // Inside the band: no change.
        assert!(c.observe(sample(0, 0, 0.7)).is_empty());
        let d = c.observe(sample(0, 0, 0.9));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].action, ControlAction::EngageGate);
        assert!(c.gate_engaged());
        // Still above the low watermark: gate holds (hysteresis).
        assert!(c.observe(sample(0, 0, 0.7)).is_empty());
        let d = c.observe(sample(0, 0, 0.5));
        assert_eq!(d[0].action, ControlAction::ReleaseGate);
        assert!(!c.gate_engaged());
    }

    #[test]
    fn level_moves_one_step_per_observation() {
        let mut c = controller();
        // Backlog 6 >= backlog_high: raise.
        let d = c.observe(sample(4, 2, 0.7));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].action, ControlAction::RaiseLevel);
        assert_eq!(c.level(), 1);
        // Enormous backlog still raises only one step.
        c.observe(sample(100, 0, 0.7));
        assert_eq!(c.level(), 2);
        c.observe(sample(100, 0, 0.7));
        assert_eq!(c.level(), 3);
        // Capped at max_level.
        assert!(c.observe(sample(100, 0, 0.7)).is_empty());
        assert_eq!(c.level(), 3);
        // Lowering needs BOTH a drained backlog and low load.
        assert!(c.observe(sample(0, 0, 0.7)).is_empty());
        let d = c.observe(sample(0, 0, 0.4));
        assert_eq!(d[0].action, ControlAction::LowerLevel);
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn degree_cap_halves_per_level_with_floor() {
        let mut c = controller();
        assert_eq!(c.degree_cap(64), None, "level 0 is uncapped");
        c.observe(sample(10, 0, 0.7));
        assert_eq!(c.degree_cap(64), Some(32));
        c.observe(sample(10, 0, 0.7));
        assert_eq!(c.degree_cap(64), Some(16));
        c.observe(sample(10, 0, 0.7));
        assert_eq!(c.degree_cap(64), Some(8));
        assert_eq!(c.degree_cap(4), Some(1), "floor at min_cap");
    }

    #[test]
    fn gate_and_level_can_change_in_one_observation() {
        let mut c = controller();
        let d = c.observe(sample(8, 0, 0.95));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].action, ControlAction::EngageGate);
        assert_eq!(d[1].action, ControlAction::RaiseLevel);
        assert!(d[1].gate, "level decision sees the engaged gate");
    }

    #[test]
    fn last_resort_bounds_fire_with_the_right_reason() {
        let cfg = ControllerConfig {
            enabled: true,
            shed_queue: Some(10),
            shed_load: Some(2.0),
            ..ControllerConfig::default()
        };
        let c = Controller::new(cfg);
        assert_eq!(c.last_resort_shed(&sample(3, 0, 0.5)), None);
        assert_eq!(
            c.last_resort_shed(&sample(10, 0, 0.5)),
            Some(crate::job::ShedReason::ControllerLastResort)
        );
        assert_eq!(
            c.last_resort_shed(&sample(0, 0, 2.5)),
            Some(crate::job::ShedReason::MeanLoad)
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_band_rejected() {
        let cfg = ControllerConfig {
            load_high: 0.5,
            load_low: 0.6,
            ..ControllerConfig::default()
        };
        Controller::new(cfg);
    }

    #[test]
    fn observation_sequence_is_deterministic() {
        let run = || {
            let mut c = controller();
            let mut decisions = Vec::new();
            for (q, load) in [(0, 0.2), (7, 0.9), (9, 0.95), (2, 0.6), (0, 0.3)] {
                decisions.extend(c.observe(sample(q, 0, load)));
            }
            decisions
        };
        assert_eq!(run(), run());
    }
}
