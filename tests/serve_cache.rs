//! Cross-crate serving-hot-path tests: the schedule cache must be an
//! invisible optimization (bit-identical trajectories, shadow-verified
//! hits) and its epoch must react to site failures mid-stream.

use mdrs::prelude::*;

fn template(joins: usize, seed: u64, cost: &CostModel) -> TreeProblem {
    let q = generate_query(&QueryGenConfig::paper(joins), seed);
    query_problem(&q, cost)
}

/// Submits a templated stream: `n` arrivals cycling through three
/// generated query templates, so most admissions should hit the cache.
fn submit_stream(rt: &mut Runtime<OverlapModel>, n: usize, cost: &CostModel) {
    let templates = [
        template(8, 41, cost),
        template(12, 42, cost),
        template(10, 43, cost),
    ];
    for i in 0..n {
        rt.submit_at(
            6.0 * i as f64,
            i % 3,
            templates[i % templates.len()].clone(),
        );
    }
}

/// Caching on vs. off over a faulted templated stream: every observable
/// output — horizons, outcomes, finish times, busy integrals, traces —
/// must be bit-identical. Only the planning counters may differ.
#[test]
fn cache_on_and_off_are_bit_identical() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(16);
    let model = OverlapModel::new(0.5).unwrap();

    // One crash/recover pair early in the stream: enough to exercise the
    // fault path in both runs while leaving the later (post-bump) epoch
    // long enough for the cache to accumulate hits.
    let faults = || {
        FaultPlan::scripted(vec![
            FaultEvent {
                time: 200.0,
                site: 3,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                time: 260.0,
                site: 3,
                kind: FaultKind::Recover,
            },
        ])
    };
    let run = |cache: bool| {
        let cfg = RuntimeConfig {
            max_in_flight: 3,
            schedule_cache: cache,
            faults: faults(),
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
        submit_stream(&mut rt, 12, &cost);
        rt.run_to_completion().unwrap()
    };

    let on = run(true);
    let off = run(false);
    assert!(on.cache.hits > 0, "templated stream must actually hit");
    assert_eq!(off.cache.hits, 0, "disabled cache must never hit");
    assert_eq!(on.horizon.to_bits(), off.horizon.to_bits());
    for (a, b) in on.queries.iter().zip(&off.queries) {
        assert_eq!(a.outcome, b.outcome, "{}: outcome differs", a.id);
        assert_eq!(
            a.finish.map(f64::to_bits),
            b.finish.map(f64::to_bits),
            "{}: finish differs with caching",
            a.id
        );
    }
    assert_eq!(on.site_busy, off.site_busy);
    assert_eq!(on.depth_trace, off.depth_trace);
    assert_eq!(on.faults, off.faults);
    // The cache saved exactly (hits) plan computations.
    assert_eq!(
        off.plans_computed(),
        on.plans_computed() + on.cache.hits,
        "plan-count accounting must balance"
    );
}

/// `verify_cache` shadow-computes every hit and panics on a digest
/// mismatch, so completing a hit-heavy faulted run under it proves each
/// served schedule byte-identical to a fresh computation.
#[test]
fn cache_hits_survive_shadow_verification() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(16);
    let model = OverlapModel::new(0.5).unwrap();
    let cfg = RuntimeConfig {
        max_in_flight: 3,
        verify_cache: true,
        faults: FaultPlan::scripted(vec![FaultEvent {
            time: 250.0,
            site: 7,
            kind: FaultKind::Crash,
        }]),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
    submit_stream(&mut rt, 12, &cost);
    let summary = rt.run_to_completion().unwrap();
    assert!(summary.cache.hits > 0, "nothing was shadow-verified");
}

/// A crash mid-stream bumps the cache epoch, and the next arrival of an
/// already-cached template re-plans instead of hitting.
#[test]
fn crash_mid_stream_forces_replanning() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(16);
    let model = OverlapModel::new(0.5).unwrap();

    // One template, three spaced arrivals; a crash lands between the
    // second and third admissions.
    let p = template(10, 99, &cost);
    let standalone = tree_schedule(&p, 0.7, &sys, &comm, &model)
        .unwrap()
        .response_time;
    let crash_at = 1.5 * standalone;
    let cfg = RuntimeConfig {
        max_in_flight: 1,
        faults: FaultPlan::scripted(vec![FaultEvent {
            time: crash_at,
            site: 15,
            kind: FaultKind::Crash,
        }]),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
    for i in 0..3 {
        rt.submit_at(i as f64 * 1e-3, 0, p.clone());
    }
    let summary = rt.run_to_completion().unwrap();
    assert_eq!(summary.sites_failed(), 1);
    assert_eq!(summary.cache.epoch_bumps, 1, "crash must bump the epoch");
    // Admission 1 misses (cold), admission 2 hits (same epoch), the
    // crash clears the cache, admission 3 misses again.
    assert_eq!(summary.cache.misses, 2, "post-crash admission must re-plan");
    assert_eq!(summary.cache.hits, 1);
}
