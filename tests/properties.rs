//! Cross-crate property-based tests: arbitrary generated queries, systems,
//! and model parameters must always produce valid, bound-respecting,
//! simulator-consistent schedules.
//!
//! Gated behind the no-dep `proptest` feature so the default offline
//! build needs no registry crates; add `proptest = "1"` to the root
//! `[dev-dependencies]` and run `cargo test --features proptest` to
//! execute these.
#![cfg(feature = "proptest")]

use mdrs::prelude::*;
use proptest::prelude::*;

fn assemble(joins: usize, seed: u64) -> (TreeProblem, CostModel) {
    let q = generate_query(&QueryGenConfig::paper(joins), seed);
    let cost = CostModel::paper_defaults();
    let problem = problem_from_plan(
        &q.plan,
        &q.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    (problem, cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated query schedules validly on any machine/model, and
    /// the two makespan formulations agree phase by phase.
    #[test]
    fn tree_schedule_always_valid(
        joins in 1usize..20,
        seed in 0u64..1000,
        sites in 1usize..64,
        eps in 0.0f64..=1.0,
        f in 0.1f64..1.2,
    ) {
        let (problem, cost) = assemble(joins, seed);
        let sys = SystemSpec::homogeneous(sites);
        let model = OverlapModel::new(eps).unwrap();
        let comm = cost.params().comm_model();
        let result = tree_schedule(&problem, f, &sys, &comm, &model).unwrap();
        let mut total = 0.0;
        for phase in &result.phases {
            phase.schedule.validate(&sys).unwrap();
            let a = phase.schedule.makespan(&sys, &model);
            let b = phase.schedule.makespan_eq3(&sys, &model);
            prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
            total += phase.makespan;
        }
        prop_assert!((total - result.response_time).abs() <= 1e-9 * total.max(1.0));
    }

    /// OPTBOUND lower-bounds TreeSchedule for any configuration.
    #[test]
    fn opt_bound_is_sound(
        joins in 1usize..15,
        seed in 0u64..500,
        sites in 1usize..48,
        eps in 0.0f64..=1.0,
    ) {
        let (problem, cost) = assemble(joins, seed);
        let sys = SystemSpec::homogeneous(sites);
        let model = OverlapModel::new(eps).unwrap();
        let comm = cost.params().comm_model();
        let f = 0.7;
        let bound = opt_bound(&problem, f, &sys, &comm, &model);
        let ts = tree_schedule(&problem, f, &sys, &comm, &model).unwrap().response_time;
        prop_assert!(bound <= ts + 1e-6 * ts.max(1.0), "bound {bound} > achieved {ts}");
    }

    /// The simulator agrees with the analytic model for any workload.
    #[test]
    fn simulator_always_agrees(
        joins in 1usize..12,
        seed in 0u64..300,
        sites in 1usize..32,
        eps in 0.0f64..=1.0,
    ) {
        let (problem, cost) = assemble(joins, seed);
        let sys = SystemSpec::homogeneous(sites);
        let model = OverlapModel::new(eps).unwrap();
        let comm = cost.params().comm_model();
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        let sim = simulate_tree(&result, &sys, &model, &SimConfig::default());
        prop_assert!((sim - result.response_time).abs()
            <= 1e-9 * result.response_time.max(1.0));
    }

    /// SYNCHRONOUS schedules are always valid and every phase respects
    /// the binding constraints (probe at build's home).
    #[test]
    fn synchronous_always_valid(
        joins in 1usize..15,
        seed in 0u64..400,
        sites in 1usize..48,
        eps in 0.0f64..=1.0,
    ) {
        let (problem, cost) = assemble(joins, seed);
        let sys = SystemSpec::homogeneous(sites);
        let model = OverlapModel::new(eps).unwrap();
        let comm = cost.params().comm_model();
        let result = synchronous_schedule(&problem, &sys, &comm, &model).unwrap();
        for phase in &result.phases {
            phase.schedule.validate(&sys).unwrap();
        }
        for b in &problem.bindings {
            prop_assert_eq!(
                result.homes_of(b.dependent).unwrap(),
                result.homes_of(b.source).unwrap()
            );
        }
    }

    /// Degrees chosen by TreeSchedule never exceed the machine and the
    /// phase count matches the task-tree height.
    #[test]
    fn structural_invariants(
        joins in 1usize..18,
        seed in 0u64..400,
        sites in 1usize..32,
    ) {
        let (problem, cost) = assemble(joins, seed);
        let sys = SystemSpec::homogeneous(sites);
        let model = OverlapModel::new(0.5).unwrap();
        let comm = cost.params().comm_model();
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        prop_assert_eq!(result.phases.len(), problem.tasks.height() + 1);
        for phase in &result.phases {
            for op in &phase.schedule.ops {
                prop_assert!((1..=sites).contains(&op.degree));
            }
        }
    }

    /// Subtree-signature equality implies digest-identical sub-schedules:
    /// for any overlap-templated batch, planning every member against one
    /// shared fragment memo splices across members yet reproduces,
    /// bit for bit, what a cold memo would have packed.
    #[test]
    fn shared_splices_match_cold_plans(
        joins in 4usize..14,
        overlap in 0.3f64..=1.0,
        window in 2usize..6,
        seed in 0u64..500,
        sites in 4usize..32,
        eps in 0.0f64..=1.0,
    ) {
        let cost = CostModel::paper_defaults();
        let sys = SystemSpec::homogeneous(sites);
        let model = OverlapModel::new(eps).unwrap();
        let comm = cost.params().comm_model();
        let batch = overlap_batch(&QueryGenConfig::paper(joins), overlap, window, seed);
        let mut warm = MapFragmentCache::new();
        for q in &batch {
            let p = query_problem(q, &cost);
            let (shared, _) =
                tree_schedule_shared(&p, 0.7, &sys, &comm, &model, None, &mut warm).unwrap();
            let (cold, _) = tree_schedule_shared(
                &p, 0.7, &sys, &comm, &model, None, &mut MapFragmentCache::new(),
            )
            .unwrap();
            prop_assert_eq!(schedule_digest(&shared), schedule_digest(&cold));
        }
    }
}
