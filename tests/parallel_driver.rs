//! The parallel experiment driver must be invisible in the output: any
//! `--jobs` value produces byte-identical reports and CSV files, because
//! cells are merged in serial order after the fan-out (see
//! `mrs_exp::runner::par_map`).

use mdrs::prelude::*;
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mdrs-parallel-driver-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("stale scratch dir removed");
    }
    fs::create_dir_all(&dir).expect("scratch dir created");
    dir
}

#[test]
fn fig5a_csv_is_byte_identical_across_job_counts() {
    let serial = ExpConfig {
        seed: 1996,
        fast: true,
        jobs: 1,
    };
    let parallel = ExpConfig { jobs: 4, ..serial };

    let a = fig5a(&serial);
    let b = fig5a(&parallel);
    assert_eq!(a.render(), b.render(), "rendered reports must match");

    let dir_a = scratch_dir("serial");
    let dir_b = scratch_dir("jobs4");
    let path_a = a.write_csv(&dir_a).expect("serial CSV written");
    let path_b = b.write_csv(&dir_b).expect("parallel CSV written");
    let bytes_a = fs::read(&path_a).expect("serial CSV read");
    let bytes_b = fs::read(&path_b).expect("parallel CSV read");
    assert_eq!(
        bytes_a, bytes_b,
        "CSV bytes must be identical for --jobs 1 vs --jobs 4"
    );
    fs::remove_dir_all(&dir_a).ok();
    fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn every_experiment_is_jobs_invariant() {
    // The registry sweep in fast mode: each experiment's table must not
    // depend on the worker count (including jobs > cell count).
    let serial = ExpConfig {
        seed: 7,
        fast: true,
        jobs: 1,
    };
    let parallel = ExpConfig { jobs: 3, ..serial };
    for (id, f) in all_experiments() {
        let a = f(&serial);
        let b = f(&parallel);
        assert_eq!(a.table, b.table, "experiment {id} changed under --jobs 3");
    }
}
