//! Cross-crate integration tests for the beyond-the-paper extensions:
//! unary plan operators, the join-order optimizer, memory capacities,
//! pipelined simulation, and shelf policies — exercised together, through
//! the public facade.

use mdrs::prelude::*;
use mrs_core::memory::{operator_schedule_with_memory, MemoryDemand, MemorySpec};

fn scheduling_env(sites: usize) -> (SystemSpec, CommModel, OverlapModel, CostModel) {
    (
        SystemSpec::homogeneous(sites),
        CommModel::paper_defaults(),
        OverlapModel::new(0.5).unwrap(),
        CostModel::paper_defaults(),
    )
}

#[test]
fn optimizer_plans_schedule_end_to_end() {
    let (sys, comm, model, cost) = scheduling_env(16);
    let q = generate_query(&QueryGenConfig::paper(10), 77);
    for plan in [
        optimize_greedy(&q.catalog, &q.graph_edges, &KeyJoinMax).unwrap(),
        optimize_dp(&q.catalog, &q.graph_edges, &KeyJoinMax).unwrap(),
    ] {
        let problem = problem_from_plan(
            &plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        assert!(r.response_time > 0.0);
        for p in &r.phases {
            p.schedule.validate(&sys).unwrap();
        }
    }
}

#[test]
fn aggregated_and_sorted_plans_simulate_correctly() {
    let (sys, _, model, cost) = scheduling_env(12);
    let comm = cost.params().comm_model();
    let q = generate_query(&QueryGenConfig::paper(8), 3);
    for kind in [
        UnaryKind::HashAggregate {
            output_fraction: 0.1,
        },
        UnaryKind::Sort,
    ] {
        let plan = q.plan.with_unary_root(kind);
        let problem = problem_from_plan(
            &plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        // The fluid simulator agrees with the analytic model for unary
        // operators too.
        let sim = simulate_tree(&r, &sys, &model, &SimConfig::default());
        assert!((sim - r.response_time).abs() <= 1e-9 * r.response_time);
        // The unary operator runs in the last phase, alone at the top.
        let last = r.phases.last().unwrap();
        assert_eq!(last.level, 0);
        assert!(last
            .schedule
            .ops
            .iter()
            .any(|o| matches!(o.spec.kind, OperatorKind::Aggregate | OperatorKind::Sort)));
    }
}

#[test]
fn shelf_policies_agree_on_shape_constraints() {
    use mrs_core::tree::{tree_schedule_full, PhasePolicy};
    let (sys, _, model, cost) = scheduling_env(24);
    let comm = cost.params().comm_model();
    for seed in 0..4u64 {
        let q = generate_query(&QueryGenConfig::paper(14), 900 + seed);
        let problem = problem_from_plan(
            &q.plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        for policy in [PhasePolicy::Alap, PhasePolicy::Asap] {
            let r = tree_schedule_full(
                &problem,
                0.7,
                &sys,
                &comm,
                &model,
                ListOrder::LongestFirst,
                policy,
            )
            .unwrap();
            // Same shelf count either way; all bindings honoured.
            assert_eq!(r.phases.len(), problem.tasks.height() + 1);
            for b in &problem.bindings {
                assert_eq!(
                    r.homes_of(b.dependent).unwrap(),
                    r.homes_of(b.source).unwrap(),
                    "policy {policy:?} broke a binding"
                );
            }
        }
    }
}

#[test]
fn memory_constrained_schedule_simulates() {
    let (sys, comm, model, _) = scheduling_env(10);
    // Builds with resident tables, scheduled under memory, then run
    // through the simulator: the whole chain composes.
    let ops: Vec<OperatorSpec> = (0..5)
        .map(|i| {
            OperatorSpec::floating(
                OperatorId(i),
                OperatorKind::Build,
                WorkVector::from_slice(&[1.0 + i as f64, 0.5, 0.0]),
                250_000.0,
            )
        })
        .collect();
    let demands: Vec<MemoryDemand> = (0..5)
        .map(|i| MemoryDemand::bytes(1e6 * (1 + i) as f64))
        .collect();
    let r = operator_schedule_with_memory(
        ops,
        &demands,
        MemorySpec::new(2e6).unwrap(),
        0.7,
        &sys,
        &comm,
        &model,
    )
    .unwrap();
    let analytic = r.schedule.makespan(&sys, &model);
    let sim = simulate_phase(&r.schedule, &sys, &model, &SimConfig::default());
    assert!((sim.makespan - analytic).abs() <= 1e-9 * analytic.max(1.0));
}

#[test]
fn structured_shapes_compose_with_everything() {
    let (sys, _, model, cost) = scheduling_env(12);
    let comm = cost.params().comm_model();
    // A star query with a final aggregation, planned by the DP optimizer,
    // scheduled, and simulated.
    let star = star_query(8e4, &[1e3, 3e3, 6e2, 2e3]);
    let optimized = optimize_dp(&star.catalog, &star.graph_edges, &KeyJoinMax)
        .unwrap()
        .with_unary_root(UnaryKind::HashAggregate {
            output_fraction: 0.05,
        });
    let problem = problem_from_plan(
        &optimized,
        &star.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    let sim = simulate_tree(&r, &sys, &model, &SimConfig::default());
    assert!((sim - r.response_time).abs() <= 1e-9 * r.response_time);
    // And the OPTBOUND lower bound still holds.
    let bound = opt_bound(&problem, 0.7, &sys, &comm, &model);
    assert!(bound <= r.response_time + 1e-9);
}

#[test]
fn pipelined_simulation_brackets_queries_with_aggregates() {
    let (sys, _, model, cost) = scheduling_env(16);
    let comm = cost.params().comm_model();
    let q = generate_query(&QueryGenConfig::paper(10), 44);
    let plan = q.plan.with_unary_root(UnaryKind::Sort);
    let annotated = plan.annotate(&q.catalog, &KeyJoinMax);
    let optree = OperatorTree::expand(&annotated);
    let edges: Vec<_> = optree.pipeline_edges().collect();
    let problem = problem_from_optree(&optree, &cost, &ScanPlacement::Floating).unwrap();
    let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    for phase in &r.phases {
        let free = simulate_phase(&phase.schedule, &sys, &model, &SimConfig::default()).makespan;
        let tight =
            simulate_phase_pipelined(&phase.schedule, &edges, &sys, &model, &SimConfig::default())
                .makespan;
        assert!(tight + 1e-9 * tight.max(1.0) >= free);
    }
}
