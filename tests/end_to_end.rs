//! End-to-end integration: random workloads through plan expansion, cost
//! derivation, and every scheduler in the workspace.

use mdrs::prelude::*;

fn assemble(joins: usize, seed: u64) -> (GeneratedQuery, TreeProblem, CostModel) {
    let q = generate_query(&QueryGenConfig::paper(joins), seed);
    let cost = CostModel::paper_defaults();
    let problem = problem_from_plan(
        &q.plan,
        &q.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    (q, problem, cost)
}

#[test]
fn operator_count_matches_join_count() {
    for joins in [1usize, 5, 15, 30] {
        let (_, problem, _) = assemble(joins, 1);
        // J joins → 2J (build+probe) + (J+1) scans.
        assert_eq!(problem.ops.len(), 3 * joins + 1);
        assert_eq!(problem.bindings.len(), joins);
    }
}

#[test]
fn tree_schedule_produces_valid_phases_across_sizes() {
    let model = OverlapModel::new(0.5).unwrap();
    for (joins, sites) in [(5usize, 4usize), (10, 20), (25, 60), (40, 140)] {
        let (_, problem, cost) = assemble(joins, joins as u64);
        let sys = SystemSpec::homogeneous(sites);
        let comm = cost.params().comm_model();
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        assert!(result.response_time > 0.0);
        for phase in &result.phases {
            phase.schedule.validate(&sys).unwrap();
        }
        // Every operator scheduled exactly once.
        let scheduled: usize = result.phases.iter().map(|p| p.schedule.ops.len()).sum();
        assert_eq!(scheduled, problem.ops.len());
    }
}

#[test]
fn probe_homes_always_match_build_homes() {
    let model = OverlapModel::new(0.3).unwrap();
    let (_, problem, cost) = assemble(20, 99);
    let sys = SystemSpec::homogeneous(32);
    let comm = cost.params().comm_model();
    let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    for binding in &problem.bindings {
        let probe = result.homes_of(binding.dependent).expect("probe scheduled");
        let build = result.homes_of(binding.source).expect("build scheduled");
        assert_eq!(probe, build, "binding violated for {}", binding.dependent);
    }
}

#[test]
fn every_scheduler_beats_serial_execution() {
    let model = OverlapModel::new(0.5).unwrap();
    let (_, problem, cost) = assemble(12, 5);
    let sys = SystemSpec::homogeneous(24);
    let comm = cost.params().comm_model();
    // Serial: every operator alone on one site, all phases summed.
    let serial: f64 = problem
        .ops
        .iter()
        .map(|o| t_par(o, 1, &comm, &sys.site, &model))
        .sum();

    let ts = tree_schedule(&problem, 0.7, &sys, &comm, &model)
        .unwrap()
        .response_time;
    let sync = synchronous_schedule(&problem, &sys, &comm, &model)
        .unwrap()
        .response_time;
    let scalar = scalar_tree_schedule(&problem, 0.7, &sys, &comm, &model)
        .unwrap()
        .response_time;
    let rr = round_robin_tree_schedule(&problem, 0.7, &sys, &comm, &model)
        .unwrap()
        .response_time;
    for (name, t) in [("TS", ts), ("SYNC", sync), ("1D", scalar), ("RR", rr)] {
        assert!(
            t < serial,
            "{name} ({t:.2}s) should beat serial execution ({serial:.2}s)"
        );
    }
}

#[test]
fn tree_schedule_wins_on_the_paper_workload() {
    // The headline comparison over a small version of the paper's suite.
    let model = OverlapModel::new(0.3).unwrap();
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(40);
    let s = suite(20, 8, 2024);
    let (mut ts_total, mut sync_total) = (0.0f64, 0.0f64);
    for q in &s.queries {
        let problem = problem_from_plan(
            &q.plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        ts_total += tree_schedule(&problem, 0.7, &sys, &comm, &model)
            .unwrap()
            .response_time;
        sync_total += synchronous_schedule(&problem, &sys, &comm, &model)
            .unwrap()
            .response_time;
    }
    assert!(
        ts_total < sync_total,
        "TreeSchedule ({ts_total:.1}s) must beat Synchronous ({sync_total:.1}s) on average"
    );
}

#[test]
fn opt_bound_below_every_algorithm() {
    let model = OverlapModel::new(0.5).unwrap();
    for seed in 0..6u64 {
        let (_, problem, cost) = assemble(10, seed);
        let sys = SystemSpec::homogeneous(16);
        let comm = cost.params().comm_model();
        let f = 0.7;
        let bound = opt_bound(&problem, f, &sys, &comm, &model);
        let ts = tree_schedule(&problem, f, &sys, &comm, &model)
            .unwrap()
            .response_time;
        let sync = synchronous_schedule(&problem, &sys, &comm, &model)
            .unwrap()
            .response_time;
        assert!(
            bound <= ts + 1e-9,
            "seed {seed}: OPTBOUND {bound} > TS {ts}"
        );
        assert!(
            bound <= sync + 1e-9,
            "seed {seed}: OPTBOUND {bound} > SYNC {sync}"
        );
    }
}

#[test]
fn rooted_scan_placement_round_trips() {
    let q = generate_query(&QueryGenConfig::paper(8), 3);
    let cost = CostModel::paper_defaults();
    let sys = SystemSpec::homogeneous(12);
    let problem = problem_from_plan(
        &q.plan,
        &q.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::RoundRobin {
            degree: 3,
            sites: 12,
        },
    )
    .unwrap();
    let model = OverlapModel::new(0.5).unwrap();
    let comm = cost.params().comm_model();
    let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    // Every rooted scan ended up exactly at its required homes.
    for op in &problem.ops {
        if let Some(required) = op.rooted_homes() {
            assert_eq!(result.homes_of(op.id).unwrap(), required);
        }
    }
}

#[test]
fn single_site_system_degenerates_gracefully() {
    let model = OverlapModel::new(0.5).unwrap();
    let (_, problem, cost) = assemble(5, 8);
    let sys = SystemSpec::homogeneous(1);
    let comm = cost.params().comm_model();
    let ts = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    let sync = synchronous_schedule(&problem, &sys, &comm, &model).unwrap();
    // Everything runs serially on the lone site; both algorithms validate.
    for p in &ts.phases {
        for op in &p.schedule.ops {
            assert_eq!(op.degree, 1);
        }
    }
    assert!(ts.response_time > 0.0);
    assert!(sync.response_time > 0.0);
}

#[test]
fn scan_only_query_schedules() {
    let mut catalog = Catalog::new();
    let r = catalog.add_relation("solo", 50_000.0);
    let plan = PlanTree::scan_only(r);
    let cost = CostModel::paper_defaults();
    let problem = problem_from_plan(
        &plan,
        &catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    let sys = SystemSpec::homogeneous(8);
    let model = OverlapModel::new(0.5).unwrap();
    let comm = cost.params().comm_model();
    let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    assert_eq!(result.phases.len(), 1);
    assert_eq!(result.phases[0].schedule.ops.len(), 1);
}
