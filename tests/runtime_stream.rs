//! Cross-crate runtime tests: consistency with the offline scheduler and
//! determinism of the online event loop.

use mdrs::prelude::*;

fn problem(joins: usize, seed: u64, cost: &CostModel) -> TreeProblem {
    let q = generate_query(&QueryGenConfig::paper(joins), seed);
    query_problem(&q, cost)
}

/// A query running alone in the runtime must finish in exactly its
/// standalone TreeSchedule response time: phases dispatch back-to-back
/// and the EqualFinish fluid sites reproduce each phase's analytic
/// makespan.
#[test]
fn single_query_matches_standalone_tree_schedule() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(24);
    for (eps, joins, seed) in [(0.0, 8, 1u64), (0.5, 12, 2), (1.0, 16, 3)] {
        let model = OverlapModel::new(eps).unwrap();
        let p = problem(joins, seed, &cost);
        let standalone = tree_schedule(&p, 0.7, &sys, &comm, &model)
            .unwrap()
            .response_time;

        let mut rt = Runtime::new(sys.clone(), comm, model, RuntimeConfig::default());
        let id = rt.submit_at(0.0, 0, p);
        let summary = rt.run_to_completion().unwrap();
        let service = summary.queries[id.0].service().unwrap();
        assert!(
            (service - standalone).abs() <= 1e-9 * standalone.max(1.0),
            "eps={eps}: runtime service {service} != standalone {standalone}"
        );
        assert!((summary.queries[id.0].slowdown().unwrap() - 1.0).abs() <= 1e-9);
    }
}

/// Two queries under FCFS produce identical traces across repeated runs:
/// the event loop is deterministic (sequence-number tie-breaking, sorted
/// completion processing).
#[test]
fn two_query_fcfs_is_deterministic() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(16);
    let model = OverlapModel::new(0.5).unwrap();

    let run = || {
        let cfg = RuntimeConfig {
            policy: AdmissionPolicy::Fcfs,
            max_in_flight: 2,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
        rt.submit_at(0.0, 0, problem(10, 11, &cost));
        rt.submit_at(5.0, 1, problem(12, 22, &cost));
        rt.run_to_completion().unwrap()
    };

    let a = run();
    let b = run();
    assert_eq!(a.queries.len(), b.queries.len());
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        assert_eq!(qa.start, qb.start, "{}: start differs", qa.id);
        assert_eq!(qa.finish, qb.finish, "{}: finish differs", qa.id);
        assert_eq!(qa.volume.to_bits(), qb.volume.to_bits());
    }
    assert_eq!(a.depth_trace, b.depth_trace);
    assert_eq!(a.site_busy, b.site_busy);
    // Both queries ran concurrently for a while (MPL 2, overlapping
    // lifetimes) — the test is only meaningful if they interfered.
    let (q0, q1) = (&a.queries[0], &a.queries[1]);
    assert!(
        q1.start.unwrap() < q0.finish.unwrap(),
        "queries never overlapped"
    );
    assert!(q0.slowdown().unwrap() > 1.0 || q1.slowdown().unwrap() > 1.0);
}

/// Same seed + same FaultPlan ⇒ bit-identical runs: the recovery loop
/// (crash eviction, re-packing, retries, deadlines) preserves the event
/// loop's determinism. Every admitted query must also reach exactly one
/// terminal outcome.
#[test]
fn faulted_stream_is_deterministic_and_terminal() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(12);
    let model = OverlapModel::new(0.5).unwrap();

    let run = || {
        let cfg = RuntimeConfig {
            policy: AdmissionPolicy::Fcfs,
            max_in_flight: 3,
            faults: FaultPlan::seeded(12, 4000.0, 120.0, 30.0, 0xFA17),
            deadline: Some(2500.0),
            recovery: RecoveryConfig {
                backoff_base: 5.0,
                backoff_cap: 80.0,
                degrade_threshold: 0.25,
                ..RecoveryConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
        for (i, (joins, seed)) in [(8usize, 31u64), (12, 32), (10, 33), (14, 34), (6, 35)]
            .into_iter()
            .enumerate()
        {
            rt.submit_at(10.0 * i as f64, i % 2, problem(joins, seed, &cost));
        }
        rt.run_to_completion().unwrap()
    };

    let a = run();
    let b = run();
    assert!(
        a.sites_failed() > 0,
        "the fault plan must actually crash something"
    );
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        assert_eq!(qa.outcome, qb.outcome, "{}: outcome differs", qa.id);
        assert_eq!(
            qa.finish.map(f64::to_bits),
            qb.finish.map(f64::to_bits),
            "{}: finish differs",
            qa.id
        );
        assert!(
            matches!(
                qa.outcome,
                Some(QueryOutcome::Completed)
                    | Some(QueryOutcome::Aborted { .. })
                    | Some(QueryOutcome::Shed { .. })
            ),
            "{}: non-terminal outcome {:?}",
            qa.id,
            qa.outcome
        );
    }
    assert_eq!(a.faults, b.faults, "fault traces must be identical");
    assert_eq!(a.depth_trace, b.depth_trace);
    assert_eq!(a.site_busy, b.site_busy);
}

/// The admission policies actually change the service order under
/// backlog: with the machine busy and a fat query queued ahead of a thin
/// one, SVF serves the thin one first while FCFS preserves arrival order.
#[test]
fn policies_reorder_backlog() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(16);
    let model = OverlapModel::new(0.5).unwrap();

    let starts = |policy: AdmissionPolicy| {
        let cfg = RuntimeConfig {
            policy,
            max_in_flight: 1,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
        rt.submit_at(0.0, 0, problem(10, 5, &cost)); // running
        rt.submit_at(1.0, 0, problem(20, 6, &cost)); // fat, queued first
        rt.submit_at(2.0, 0, problem(4, 7, &cost)); // thin, queued second
        let summary = rt.run_to_completion().unwrap();
        (
            summary.queries[1].start.unwrap(),
            summary.queries[2].start.unwrap(),
        )
    };

    let (fat_fcfs, thin_fcfs) = starts(AdmissionPolicy::Fcfs);
    assert!(fat_fcfs < thin_fcfs, "FCFS must preserve arrival order");
    let (fat_svf, thin_svf) = starts(AdmissionPolicy::SmallestVolumeFirst);
    assert!(thin_svf < fat_svf, "SVF must serve the thin query first");
}
