//! Determinism and reproducibility across the whole pipeline: identical
//! seeds must produce bit-identical workloads, problems, and schedules —
//! the property that makes every EXPERIMENTS.md number regenerable.

use mdrs::prelude::*;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let q = generate_query(&QueryGenConfig::paper(18), 12345);
        let cost = CostModel::paper_defaults();
        let problem = problem_from_plan(
            &q.plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        let sys = SystemSpec::homogeneous(28);
        let model = OverlapModel::new(0.4).unwrap();
        let comm = cost.params().comm_model();
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        (
            result.response_time,
            result
                .phases
                .iter()
                .map(|p| p.schedule.assignment.clone())
                .collect::<Vec<_>>(),
        )
    };
    let (t1, a1) = run();
    let (t2, a2) = run();
    assert_eq!(t1, t2, "response time must be bit-identical");
    assert_eq!(a1, a2, "assignments must be identical");
}

#[test]
fn suites_are_reproducible_and_seed_sensitive() {
    let a = suite(15, 4, 1);
    let b = suite(15, 4, 1);
    let c = suite(15, 4, 2);
    for (x, y) in a.queries.iter().zip(&b.queries) {
        assert_eq!(x.plan, y.plan);
        assert_eq!(x.graph_edges, y.graph_edges);
    }
    let same = a
        .queries
        .iter()
        .zip(&c.queries)
        .filter(|(x, y)| x.plan == y.plan)
        .count();
    assert!(same < a.queries.len(), "different seeds must change plans");
}

#[test]
fn baselines_are_deterministic_too() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let model = OverlapModel::new(0.5).unwrap();
    let q = generate_query(&QueryGenConfig::paper(10), 5);
    let problem = problem_from_plan(
        &q.plan,
        &q.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    let sys = SystemSpec::homogeneous(10);
    let s1 = synchronous_schedule(&problem, &sys, &comm, &model).unwrap();
    let s2 = synchronous_schedule(&problem, &sys, &comm, &model).unwrap();
    assert_eq!(s1.response_time, s2.response_time);
    let m1 = {
        // Malleable over the deepest level's independent operators.
        let ops: Vec<_> = problem
            .tasks
            .ops_at_level(problem.tasks.height())
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let mut op = problem.ops[id.0].clone();
                op.id = OperatorId(i);
                op
            })
            .collect();
        malleable_schedule(ops, &sys, &comm, &model).unwrap()
    };
    assert!(!m1.degrees.is_empty());
}

#[test]
fn experiment_reports_are_reproducible() {
    let cfg = ExpConfig {
        seed: 42,
        fast: true,
        jobs: 1,
    };
    let a = fig6a(&cfg);
    let b = fig6a(&cfg);
    assert_eq!(a.table, b.table, "experiment output must be reproducible");
    let c = fig6a(&ExpConfig {
        seed: 43,
        fast: true,
        jobs: 1,
    });
    assert_ne!(a.table, c.table, "seed must matter");
}

#[test]
fn faults_experiment_is_reproducible_and_jobs_invariant() {
    // Same seed + same FaultPlan ⇒ byte-identical CSV, and the worker
    // count must not leak into the numbers: the sweep cells are pure
    // functions merged in input order.
    let cfg = |jobs| ExpConfig {
        seed: 7,
        fast: true,
        jobs,
    };
    let serial = faults(&cfg(1)).table.to_csv();
    let again = faults(&cfg(1)).table.to_csv();
    assert_eq!(serial, again, "faults must be run-to-run reproducible");
    let parallel = faults(&cfg(4)).table.to_csv();
    assert_eq!(serial, parallel, "--jobs must not change faults output");
}

#[test]
fn experiment_registry_runs_everything_fast() {
    // Smoke-test the full registry in fast mode; every report renders.
    let cfg = ExpConfig {
        seed: 9,
        fast: true,
        jobs: 1,
    };
    for (id, f) in all_experiments() {
        let report = f(&cfg);
        assert_eq!(report.id, id);
        let text = report.render();
        assert!(text.contains("=="), "report {id} should render a title");
        assert!(!report.table.rows.is_empty(), "report {id} has no rows");
        let csv = report.table.to_csv();
        assert!(csv.lines().count() >= 2, "report {id} CSV too short");
    }
}
