//! Empirical verification of the paper's theorems over realistic,
//! query-derived workloads (complementing the synthetic property tests
//! inside `mrs-core`).

use mdrs::prelude::*;

/// Theorem 5.1(a): per-phase, the list heuristic is within 2d+1 of the
/// phase lower bound (which is itself ≤ the optimum for the given
/// parallelization).
#[test]
fn theorem_5_1a_on_query_phases() {
    let model = OverlapModel::new(0.5).unwrap();
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    for seed in 0..8u64 {
        let q = generate_query(&QueryGenConfig::paper(15), seed);
        let problem = problem_from_plan(
            &q.plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        for sites in [5usize, 20, 80] {
            let sys = SystemSpec::homogeneous(sites);
            let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
            let ratio_bound = theorem_5_1_ratio_fixed(sys.dim());
            for phase in &result.phases {
                let lb = phase_lower_bound(&phase.schedule.ops, &sys, &model);
                assert!(
                    phase.makespan <= ratio_bound * lb + 1e-9,
                    "seed {seed}, P={sites}, level {}: makespan {} vs (2d+1)*LB {}",
                    phase.level,
                    phase.makespan,
                    ratio_bound * lb
                );
            }
        }
    }
}

/// Theorem 5.1 against the *true* optimum on small query-derived phases.
#[test]
fn theorem_5_1a_against_branch_and_bound() {
    let model = OverlapModel::new(0.5).unwrap();
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(3);
    let mut verified = 0usize;
    for seed in 0..10u64 {
        let q = generate_query(&QueryGenConfig::paper(4), 500 + seed);
        let problem = problem_from_plan(
            &q.plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
        for phase in &result.phases {
            let clone_count: usize = phase.schedule.ops.iter().map(|o| o.degree).sum();
            if clone_count > 14 {
                continue; // keep the exact search fast
            }
            if let Some(opt) = optimal_pack(&phase.schedule.ops, &sys, &model, 20_000_000).unwrap()
            {
                let heuristic = phase.schedule.makespan(&sys, &model);
                assert!(
                    heuristic <= theorem_5_1_ratio_fixed(sys.dim()) * opt.makespan + 1e-9,
                    "heuristic {heuristic} vs optimal {}",
                    opt.makespan
                );
                assert!(heuristic + 1e-9 >= opt.makespan, "optimum can't be beaten");
                verified += 1;
            }
        }
    }
    assert!(
        verified >= 10,
        "too few phases verified exactly ({verified})"
    );
}

/// Theorem 7.1 on diverse operator mixes extracted from generated queries.
#[test]
fn theorem_7_1_on_query_operators() {
    let model = OverlapModel::new(0.4).unwrap();
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    for seed in 0..6u64 {
        let q = generate_query(&QueryGenConfig::paper(10), 700 + seed);
        let problem = problem_from_plan(
            &q.plan,
            &q.catalog,
            &KeyJoinMax,
            &cost,
            &ScanPlacement::Floating,
        )
        .unwrap();
        // Use the independent operators of the deepest level as a
        // malleable batch.
        let level = problem.tasks.height();
        let ops: Vec<OperatorSpec> = problem
            .tasks
            .ops_at_level(level)
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let mut op = problem.ops[id.0].clone();
                op.id = OperatorId(i);
                op
            })
            .collect();
        assert!(!ops.is_empty());
        for sites in [4usize, 16, 64] {
            let sys = SystemSpec::homogeneous(sites);
            let out = malleable_schedule(ops.clone(), &sys, &comm, &model).unwrap();
            let makespan = out.schedule.makespan(&sys, &model);
            let bound = (2.0 * sys.dim() as f64 + 1.0) * out.lower_bound;
            assert!(
                makespan <= bound + 1e-9,
                "seed {seed}, P={sites}: {makespan} vs {bound}"
            );
        }
    }
}

/// Proposition 4.1 consistency on real operators: the chosen degrees are
/// genuinely coarse-grain and within the A4 speed-down point.
#[test]
fn proposition_4_1_on_query_operators() {
    let model = OverlapModel::new(0.5).unwrap();
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let q = generate_query(&QueryGenConfig::paper(12), 31);
    let problem = problem_from_plan(
        &q.plan,
        &q.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    let sys = SystemSpec::homogeneous(50);
    let f = 0.7;
    for op in &problem.ops {
        let choice = choose_degree(op, f, sys.sites, &comm, &sys.site, &model);
        // Granularity: the chosen degree satisfies Definition 4.1 whenever
        // any degree > 1 does.
        if choice.degree > 1 {
            assert!(
                comm.is_coarse_grain(f, op.processing_area(), op.data_volume, choice.degree),
                "{}: degree {} violates CG_f",
                op.id,
                choice.degree
            );
        }
        // A4: within the allowed range, the chosen degree is a minimizer —
        // one more site helps only when the CG_f or machine cap is what
        // stopped us, never past the speed-down point.
        let cap = choice.coarse_grain_cap.min(sys.sites);
        if choice.degree < cap {
            let t_next = t_par(op, choice.degree + 1, &comm, &sys.site, &model);
            assert!(choice.t_par <= t_next + 1e-9);
        }
        // And the choice is never worse than running sequentially.
        let t_seq = t_par(op, 1, &comm, &sys.site, &model);
        assert!(choice.t_par <= t_seq + 1e-9);
    }
}

/// The analytic worst-case ratios are ordered sensibly.
#[test]
fn ratio_functions_consistent() {
    for d in 1..=6 {
        assert!(theorem_5_1_ratio_fixed(d) >= 3.0);
        for f in [0.1, 0.5, 1.0] {
            assert!(theorem_5_1_ratio_cg(d, f) >= theorem_5_1_ratio_fixed(d));
        }
    }
}
