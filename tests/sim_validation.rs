//! Simulator-vs-analytic validation over full query workloads: the fluid
//! engine under assumptions A2/A3 must reproduce Equations (2)/(3)
//! exactly, and the relaxed disciplines must never beat the bounds.

use mdrs::prelude::*;

fn scheduled_queries(
    joins: usize,
    count: usize,
    sites: usize,
    eps: f64,
) -> Vec<(TreeScheduleResult, SystemSpec, OverlapModel)> {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let model = OverlapModel::new(eps).unwrap();
    let s = suite(joins, count, 77);
    s.queries
        .iter()
        .map(|q| {
            let problem = problem_from_plan(
                &q.plan,
                &q.catalog,
                &KeyJoinMax,
                &cost,
                &ScanPlacement::Floating,
            )
            .unwrap();
            let sys = SystemSpec::homogeneous(sites);
            let r = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
            (r, sys, model)
        })
        .collect()
}

#[test]
fn equal_finish_reproduces_analytic_model_exactly() {
    for (result, sys, model) in scheduled_queries(12, 4, 20, 0.5) {
        let sim = simulate_tree(&result, &sys, &model, &SimConfig::default());
        let rel = (sim - result.response_time).abs() / result.response_time;
        assert!(
            rel < 1e-9,
            "simulated {sim} vs analytic {}",
            result.response_time
        );
    }
}

#[test]
fn equal_finish_matches_across_overlap_settings() {
    for eps in [0.0, 0.1, 0.5, 0.9, 1.0] {
        for (result, sys, model) in scheduled_queries(8, 2, 16, eps) {
            let sim = simulate_tree(&result, &sys, &model, &SimConfig::default());
            let rel = (sim - result.response_time).abs() / result.response_time.max(1e-12);
            assert!(rel < 1e-9, "eps={eps}: {sim} vs {}", result.response_time);
        }
    }
}

#[test]
fn fair_share_never_below_analytic() {
    let cfg = SimConfig {
        policy: SharingPolicy::FairShare,
        timeshare_overhead: 0.0,
    };
    for (result, sys, model) in scheduled_queries(10, 3, 12, 0.3) {
        for phase in &result.phases {
            let sim = simulate_phase(&phase.schedule, &sys, &model, &cfg);
            assert!(
                sim.makespan + 1e-6 * phase.makespan >= phase.makespan,
                "FairShare {} beat the analytic floor {}",
                sim.makespan,
                phase.makespan
            );
        }
    }
}

#[test]
fn overhead_strictly_monotone_when_sites_shared() {
    let (results, sys, model) = {
        let mut v = scheduled_queries(10, 1, 8, 0.5);
        let (r, sys, model) = v.pop().unwrap();
        (r, sys, model)
    };
    let mut last = 0.0f64;
    for ovh in [0.0, 0.2, 0.5, 1.0] {
        let cfg = SimConfig {
            policy: SharingPolicy::EqualFinish,
            timeshare_overhead: ovh,
        };
        let total: f64 = results
            .phases
            .iter()
            .map(|p| simulate_phase(&p.schedule, &sys, &model, &cfg).makespan)
            .sum();
        assert!(total + 1e-9 >= last, "overhead {ovh} not monotone");
        last = total;
    }
}

#[test]
fn completion_counts_match_clone_counts() {
    for (result, sys, model) in scheduled_queries(6, 2, 10, 0.4) {
        for phase in &result.phases {
            let clones: usize = phase.schedule.ops.iter().map(|o| o.degree).sum();
            let sim = simulate_phase(&phase.schedule, &sys, &model, &SimConfig::default());
            assert_eq!(sim.completions.len(), clones);
            // Completion times never exceed the phase makespan.
            for (_, _, t) in &sim.completions {
                assert!(*t <= sim.makespan + 1e-12);
            }
        }
    }
}

#[test]
fn skewed_execution_never_faster_than_planned() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let model = OverlapModel::new(0.5).unwrap();
    let q = generate_query(&QueryGenConfig::paper(10), 13);
    let problem = problem_from_plan(
        &q.plan,
        &q.catalog,
        &KeyJoinMax,
        &cost,
        &ScanPlacement::Floating,
    )
    .unwrap();
    let sys = SystemSpec::homogeneous(16);
    let planned = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
    // theta = 0 must reproduce the plan exactly; strong skew (theta = 1,
    // ~3.4x work on the first clone) must hurt. Mild skew can in rare
    // packings shuffle congestion around, so it is not asserted.
    for theta in [0.0, 1.0] {
        let mut realized = 0.0;
        for phase in &planned.phases {
            let skewed_ops: Vec<ScheduledOperator> = phase
                .schedule
                .ops
                .iter()
                .map(|sop| {
                    ScheduledOperator::with_strategy(
                        sop.spec.clone(),
                        sop.degree,
                        &comm,
                        &sys.site,
                        &zipf_partition(sop.degree, theta),
                    )
                })
                .collect();
            realized += PhaseSchedule {
                ops: skewed_ops,
                assignment: phase.schedule.assignment.clone(),
            }
            .makespan(&sys, &model);
        }
        assert!(
            realized + 1e-9 >= planned.response_time,
            "theta={theta}: skew should never speed things up"
        );
    }
}
