//! Cross-crate MQO sharing tests: the subtree-fragment memo must be an
//! invisible planning optimization. Splicing a fragment planned for one
//! query into another query with an equal canonical signature must
//! reproduce, bit for bit, what a cold planner would have packed — and
//! the batched runtime must stay shard-invariant and `--jobs`-invariant
//! with sharing on.

use mdrs::prelude::*;

/// A stream of overlap-templated batches converted to scheduling
/// problems (one generation batch per admission window).
fn overlap_stream(
    joins: usize,
    overlap: f64,
    window: usize,
    batches: usize,
    seed: u64,
    cost: &CostModel,
) -> Vec<TreeProblem> {
    let gen_cfg = QueryGenConfig::paper(joins);
    (0..batches)
        .flat_map(|b| {
            overlap_batch(
                &gen_cfg,
                overlap,
                window,
                seed ^ (b as u64).wrapping_mul(0xB10C),
            )
            .iter()
            .map(|q| query_problem(q, cost))
            .collect::<Vec<_>>()
        })
        .collect()
}

/// The sharing soundness property, swept over seeds and overlaps:
/// planning a member against a memo warmed by its batch-mates splices
/// fragments whose signatures match, and the spliced result is
/// bit-identical to a cold plan of the same member. Signature equality
/// must imply digest-identical sub-schedules — that is the exact-bits
/// discipline [`SubtreeSig`] promises.
#[test]
fn warm_splices_reproduce_cold_plans_bit_for_bit() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(20);
    let model = OverlapModel::new(0.5).unwrap();
    let f = 0.7;
    let mut spliced_anywhere = false;
    for seed in [7u64, 1996, 40_971] {
        for overlap in [0.5, 0.8, 1.0] {
            let batch = overlap_batch(&QueryGenConfig::paper(10), overlap, 4, seed);
            let mut warm = MapFragmentCache::new();
            for q in &batch {
                let p = query_problem(q, &cost);
                let (shared, stats) =
                    tree_schedule_shared(&p, f, &sys, &comm, &model, None, &mut warm).unwrap();
                let (cold, _) = tree_schedule_shared(
                    &p,
                    f,
                    &sys,
                    &comm,
                    &model,
                    None,
                    &mut MapFragmentCache::new(),
                )
                .unwrap();
                assert_eq!(
                    schedule_digest(&shared),
                    schedule_digest(&cold),
                    "seed {seed} overlap {overlap}: splice drifted from a cold plan"
                );
                spliced_anywhere |= stats.subtree_hits > 0;
            }
        }
    }
    assert!(spliced_anywhere, "the sweep never exercised a splice");
}

/// Signature equality is meaningful across members: every batch member
/// shares canonical subtree signatures with its batch-mates at full
/// overlap, and members of *different* batches (different cores) share
/// none of the deeper core signatures.
#[test]
fn overlap_batches_share_canonical_signatures() {
    let cost = CostModel::paper_defaults();
    let batch = overlap_batch(&QueryGenConfig::paper(12), 1.0, 3, 5);
    let sigs: Vec<Vec<SubtreeSig>> = batch
        .iter()
        .map(|q| subtree_signatures(&query_problem(q, &cost), 0.7, None).unwrap())
        .collect();
    // Full overlap: identical templates, identical signature multisets.
    assert_eq!(sigs[0], sigs[1]);
    assert_eq!(sigs[1], sigs[2]);
    // A different batch seed draws a different core: no signature of its
    // members matches any of the first batch's.
    let other = overlap_batch(&QueryGenConfig::paper(12), 1.0, 3, 6);
    let other_sigs = subtree_signatures(&query_problem(&other[0], &cost), 0.7, None).unwrap();
    assert!(
        other_sigs.iter().all(|s| !sigs[0].contains(s)),
        "distinct cores must not collide"
    );
}

/// The batched runtime under `verify_cache`: every whole-plan hit is
/// shadow-replanned with the *shared* planner against a cold memo and
/// must digest-match, even while a fault schedule bumps epochs and
/// stales fragments mid-stream. Completing the run is the assertion.
#[test]
fn batched_sharing_survives_shadow_verification_under_faults() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(16);
    let model = OverlapModel::new(0.5).unwrap();
    let stream = overlap_stream(9, 0.8, 4, 3, 1996, &cost);
    // All twelve queries arrive up front; at MPL 3 the run lasts about
    // four standalone times, so a crash at 1.5x lands mid-stream.
    let standalone = tree_schedule(&stream[0], 0.7, &sys, &comm, &model)
        .unwrap()
        .response_time;
    let cfg = RuntimeConfig {
        max_in_flight: 3,
        batch_window: 4,
        plan_sharing: true,
        verify_cache: true,
        faults: FaultPlan::scripted(vec![
            FaultEvent {
                time: 1.5 * standalone,
                site: 5,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                time: 2.0 * standalone,
                site: 5,
                kind: FaultKind::Recover,
            },
        ]),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
    for (i, p) in stream.into_iter().enumerate() {
        rt.submit_at(1e-3 * i as f64, i % 3, p);
    }
    let summary = rt.run_to_completion().unwrap();
    assert!(
        summary.cache.subtree_hits > 0,
        "the overlapped stream never spliced"
    );
    // Crash and recover each bump the cache epoch.
    assert_eq!(
        summary.cache.epoch_bumps, 2,
        "the fault pair must bump the epoch"
    );
}

/// `--batch` composes with the sharded fabric: the full summary digest
/// (trajectories, traces, counters) is invariant in the shard count.
#[test]
fn batched_sharing_is_byte_identical_across_shards() {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let sys = SystemSpec::homogeneous(12);
    let model = OverlapModel::new(0.5).unwrap();
    let stream = overlap_stream(8, 0.9, 3, 3, 42, &cost);
    let run = |shards: usize| {
        let cfg = RuntimeConfig {
            max_in_flight: 2,
            batch_window: 3,
            plan_sharing: true,
            shards,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(sys.clone(), comm, model, cfg);
        for (i, p) in stream.iter().enumerate() {
            rt.submit_at(8.0 * i as f64, i % 3, p.clone());
        }
        rt.run_to_completion().unwrap()
    };
    let s1 = run(1);
    assert!(s1.cache.subtree_hits > 0, "no sharing exercised");
    for shards in [2, 4] {
        let sn = run(shards);
        assert_eq!(
            s1.digest(),
            sn.digest(),
            "batched summary must be shard-invariant at {shards} shards"
        );
    }
}

/// The X16 experiment is `--jobs`-invariant: the worker-pool split must
/// never leak into the emitted table.
#[test]
fn mqo_experiment_is_jobs_invariant() {
    let serial = mqo(&ExpConfig {
        fast: true,
        jobs: 1,
        ..Default::default()
    });
    let parallel = mqo(&ExpConfig {
        fast: true,
        jobs: 4,
        ..Default::default()
    });
    assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
}
