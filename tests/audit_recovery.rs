//! Fault-plan integration audit (satellite of the `mrs-audit` PR):
//! X13-style served streams — both admission policies, a swept MTBF,
//! crashes, recoveries, re-packs — must produce runs that `audit_run`
//! certifies clean, with byte-identical audit traces for any `--jobs`
//! fan-out of the sweep cells.

use mdrs::prelude::*;
use mrs_exp::runner::par_map;
use mrs_runtime::metrics::RunSummary;
use mrs_sim::fault::FaultPlan;

const SITES: usize = 12;
const N_QUERIES: usize = 6;
const SEED: u64 = 0xA0D1_7001;

fn stream() -> Vec<mrs_core::tree::TreeProblem> {
    let cost = CostModel::paper_defaults();
    (0..N_QUERIES)
        .map(|i| {
            let q = generate_query(&QueryGenConfig::paper(10), SEED ^ i as u64);
            query_problem(&q, &cost)
        })
        .collect()
}

/// Runs one sweep cell: a Poisson stream under `policy` with crashes at
/// the given MTBF multiple of the mean standalone response (`0.0` =
/// fault-free).
fn run_cell(policy: AdmissionPolicy, mtbf_mult: f64) -> RunSummary {
    let cost = CostModel::paper_defaults();
    let comm = cost.params().comm_model();
    let model = OverlapModel::new(0.5).expect("valid epsilon");
    let sys = SystemSpec::homogeneous(SITES);
    let problems = stream();

    let mean_standalone: f64 = problems
        .iter()
        .map(|p| {
            tree_schedule(p, 0.7, &sys, &comm, &model)
                .expect("stream plans always schedule")
                .response_time
        })
        .sum::<f64>()
        / N_QUERIES as f64;
    let arrivals = poisson_arrivals(2.0 / mean_standalone, N_QUERIES, SEED ^ 0xBEEF);
    let faults = if mtbf_mult > 0.0 {
        FaultPlan::seeded(
            SITES,
            60.0 * mean_standalone,
            mtbf_mult * mean_standalone,
            0.3 * mean_standalone,
            SEED ^ 0x0FA7,
        )
    } else {
        FaultPlan::none()
    };
    let cfg = RuntimeConfig {
        f: 0.7,
        policy,
        max_in_flight: 3,
        faults,
        deadline: Some(60.0 * mean_standalone),
        recovery: RecoveryConfig {
            rebuild_factor: 0.1,
            max_retries: 4,
            backoff_base: 0.1 * mean_standalone,
            backoff_cap: 2.0 * mean_standalone,
            degrade_threshold: 0.25,
        },
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(sys, comm, model, cfg);
    for (i, (p, t)) in problems.iter().zip(&arrivals).enumerate() {
        rt.submit_at(*t, i % 3, p.clone());
    }
    rt.run_to_completion()
        .expect("stream plans always schedule")
}

fn cells() -> Vec<(AdmissionPolicy, f64)> {
    let policies = [AdmissionPolicy::Fcfs, AdmissionPolicy::SmallestVolumeFirst];
    let mults = [0.0, 2.0, 1.0];
    policies
        .iter()
        .flat_map(|p| mults.iter().map(move |m| (*p, *m)))
        .collect()
}

#[test]
fn faulted_runs_audit_clean_for_both_policies() {
    let summaries = par_map(1, &cells(), |(policy, mult)| run_cell(*policy, *mult));
    let mut saw_repack = false;
    for (summary, (policy, mult)) in summaries.iter().zip(&cells()) {
        let v = audit_run(summary);
        assert!(
            v.is_empty(),
            "{policy:?} at MTBF {mult}xR must audit clean: {v:?}"
        );
        saw_repack |= summary.repacks() > 0;
    }
    assert!(
        saw_repack,
        "the sweep must actually exercise recovery re-packing"
    );
}

#[test]
fn audit_traces_are_identical_across_jobs() {
    let serial = par_map(1, &cells(), |(policy, mult)| run_cell(*policy, *mult));
    let fanned = par_map(4, &cells(), |(policy, mult)| run_cell(*policy, *mult));
    for ((a, b), (policy, mult)) in serial.iter().zip(&fanned).zip(&cells()) {
        assert_eq!(
            a.trace, b.trace,
            "{policy:?} at MTBF {mult}xR: trace must not depend on --jobs"
        );
        assert_eq!(a.horizon.to_bits(), b.horizon.to_bits());
        assert_eq!(a.site_peak_util, b.site_peak_util);
    }
}
