//! # mdrs — Multi-dimensional Resource Scheduling for Parallel Queries
//!
//! A production-quality Rust reproduction of Garofalakis & Ioannidis,
//! *"Multi-dimensional Resource Scheduling for Parallel Queries"*,
//! SIGMOD 1996: scheduling bushy hash-join plans on shared-nothing
//! systems whose sites bundle `d` preemptable resources (CPU, disk,
//! network interface), by treating concurrent-operator scheduling as
//! d-dimensional vector packing.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | work vectors, OPERATORSCHEDULE, TREESCHEDULE, malleable scheduling, bounds |
//! | [`plan`] | plan trees, operator trees, query-task decomposition |
//! | [`cost`] | Table 2 parameters, per-operator work vectors |
//! | [`workload`] | seeded random query generation |
//! | [`baseline`] | SYNCHRONOUS and ablation baselines |
//! | [`sim`] | discrete-event fluid execution simulator |
//! | [`opt`] | exact branch-and-bound packing |
//! | [`exp`] | table/figure regeneration harness |
//! | [`runtime`] | online multi-query runtime: admission, site ledger, event-driven dispatch |
//! | [`audit`] | paper-invariant auditor, run-trace checker, `mrs-lint` source gate |
//!
//! ## Quickstart
//!
//! ```
//! use mdrs::prelude::*;
//!
//! // A random 10-join query over 10^3..10^5-tuple relations.
//! let query = generate_query(&QueryGenConfig::paper(10), 42);
//!
//! // Derive the multi-dimensional scheduling problem under Table 2 costs.
//! let cost = CostModel::paper_defaults();
//! let problem = problem_from_plan(
//!     &query.plan, &query.catalog, &KeyJoinMax, &cost, &ScanPlacement::Floating,
//! ).unwrap();
//!
//! // Schedule it on 32 three-resource sites with 50% resource overlap.
//! let sys = SystemSpec::homogeneous(32);
//! let model = OverlapModel::new(0.5).unwrap();
//! let comm = cost.params().comm_model();
//! let result = tree_schedule(&problem, 0.7, &sys, &comm, &model).unwrap();
//! assert!(result.response_time > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mrs_audit as audit;
pub use mrs_baseline as baseline;
pub use mrs_core as core;
pub use mrs_cost as cost;
pub use mrs_exp as exp;
pub use mrs_opt as opt;
pub use mrs_plan as plan;
pub use mrs_runtime as runtime;
pub use mrs_sim as sim;
pub use mrs_workload as workload;

/// Everything a typical user needs, flattened.
pub mod prelude {
    pub use mrs_audit::prelude::*;
    pub use mrs_baseline::prelude::*;
    pub use mrs_core::prelude::*;
    pub use mrs_cost::prelude::*;
    pub use mrs_exp::prelude::*;
    pub use mrs_opt::prelude::*;
    pub use mrs_plan::prelude::*;
    pub use mrs_runtime::prelude::*;
    pub use mrs_sim::prelude::*;
    pub use mrs_workload::prelude::*;
}
